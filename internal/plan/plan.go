// Package plan is the compiled physical query-plan layer shared by
// every conjunctive evaluator in the repository. The paper's
// transducer model is parameterized by a local query language L; each
// L here (fo, datalog, relational algebra — while and dedalus ride on
// the first two) used to own its own greedy join machinery, re-planned
// on every evaluation over string-keyed binding maps. This package
// replaces all three with one physical IR:
//
//   - a Spec describes a conjunctive join: relational atoms over
//     compile-time numbered registers, plus filters (anti-probe
//     negation checks, (in)equalities, opaque guard hooks) and a head
//     projection;
//   - a cost-driven static orderer compiles the Spec once per query
//     into a linear schedule of ops (scan, index probe via
//     fact.Lookup, constant/equality check, register assignment,
//     residual-guard check, project), choosing the atom order by
//     bound-term count with ties broken by relation cardinality
//     estimates taken from the first instance the plan is bound to;
//   - the executor runs the schedule over dense register slots
//     ([]fact.Value indexed by the compile-time numbering) — no
//     binding maps, no undo log: each register has exactly one writer
//     position in the schedule;
//   - above a cardinality threshold the SAME schedule runs on the
//     columnar batch pipeline instead (batch.go): fact.Batch column
//     vectors through merge joins on sorted ID runs, vectorized hash
//     probes, batch filters, and one arena-allocated output append —
//     the register-slot executor stays the small-input path and both
//     emit identical tuple sets;
//   - per-pinned-atom delta variants (the semi-naive schedules that
//     EvalDelta and incremental transducer firing need) are compiled
//     lazily and cached alongside the main schedule.
//
// Concurrency contract: a *Plan is immutable after New except for its
// schedule cache, which is sync.Once-guarded per pin — exactly the
// discipline of the datalog Program memos — so one plan may be
// executed concurrently from many goroutines (the parallel sharded
// runtime and the sweep fan-outs do). Register state lives in a
// per-Run frame, never on the plan.
package plan

import (
	"fmt"
	"sync"
	"sync/atomic"

	"declnet/internal/fact"
)

// Term is a plan-level term: a register (Reg >= 0) or a constant.
type Term struct {
	Reg   int
	Const fact.Value
}

// Reg returns a register term.
func Reg(r int) Term { return Term{Reg: r} }

// Const returns a constant term.
func Const(v fact.Value) Term { return Term{Reg: -1, Const: v} }

// IsReg reports whether the term is a register.
func (t Term) IsReg() bool { return t.Reg >= 0 }

// Atom is one relational atom of the conjunction: Rel(Terms...).
// A register repeated within one atom or across atoms expresses an
// equality join constraint, exactly like a repeated variable.
type Atom struct {
	Rel   string
	Terms []Term
}

// FilterKind discriminates the non-atom constraints of a Spec.
type FilterKind int

const (
	// FilterNotIn requires the tuple formed by Terms to be absent from
	// relation Rel of the full instance (an anti-probe; safe negation).
	FilterNotIn FilterKind = iota
	// FilterEq requires L = R. When one side is an unbound register at
	// placement time the compiler turns it into an assignment that
	// binds the register (the Datalog equality-binding rule).
	FilterEq
	// FilterNeq requires L != R (both sides must be bound).
	FilterNeq
	// FilterGuard calls the GuardFunc passed to Run with index Guard
	// once every register in Regs is bound. It is the hook for
	// residual FO guard formulas, which need evaluation context (the
	// instance, the active domain) that only exists at run time.
	FilterGuard
)

// Filter is a non-atom constraint.
type Filter struct {
	Kind  FilterKind
	Rel   string // FilterNotIn
	Terms []Term // FilterNotIn
	L, R  Term   // FilterEq, FilterNeq
	Regs  []int  // FilterGuard: registers the guard reads
	Guard int    // FilterGuard: index passed to the GuardFunc
}

// Spec is the logical description a Plan is compiled from.
type Spec struct {
	// Name identifies the plan in errors and explain output.
	Name string
	// NumRegs is the size of the register file.
	NumRegs int
	// RegNames, when non-nil, names registers for explain output
	// (typically the source-level variable names).
	RegNames []string
	// Head is the output projection; every register it mentions must
	// be bound by Inputs, atoms, or equality assignments.
	Head []Term
	// Atoms is the conjunction to join.
	Atoms []Atom
	// Filters are the non-atom constraints.
	Filters []Filter
	// Inputs lists registers pre-bound at entry; Run's args supply
	// their values in the same order.
	Inputs []int
	// EmitOnEmpty controls the zero-atom case: true emits the head
	// once (a Datalog fact rule), false emits nothing (the FO branch
	// convention).
	EmitOnEmpty bool
}

// GuardFunc evaluates guard filter gi under the current register
// state. Implementations must treat regs as read-only; the slice is
// the executor's live frame.
type GuardFunc func(gi int, regs []fact.Value) (bool, error)

// Plan is a compiled conjunctive query: the Spec plus a lazily built
// cache of schedules, one for the full evaluation and one per pinned
// atom (the semi-naive delta variants). Safe for concurrent use.
type Plan struct {
	spec Spec
	// scheds[0] is the unpinned schedule, scheds[i+1] pins atom i
	// first. Each entry is built at most once, on first use, with
	// relation cardinalities from the instance present at that bind.
	scheds []schedSlot
}

type schedSlot struct {
	once sync.Once
	// s is published atomically after once.Do builds it, so Explain
	// can peek at an already-bound schedule without racing (and
	// without forcing a cardinality-blind compile into the cache).
	s atomic.Pointer[schedule]
}

// New validates the spec and returns a plan. Schedules are compiled
// lazily on first execution (per pin); New only checks that the spec
// is safe — every register read by the head or a filter is bound by
// an input, an atom, or an equality assignment.
func New(spec Spec) (*Plan, error) {
	if err := validate(&spec); err != nil {
		return nil, err
	}
	// A throwaway compile with a trivial cardinality estimator proves
	// the spec schedulable; the orderer's bound-set evolution does not
	// depend on the estimator, so safety verdicts are order-free.
	if s := compile(&spec, -1, nil); s.err != nil {
		return nil, s.err
	}
	return &Plan{spec: spec, scheds: make([]schedSlot, len(spec.Atoms)+1)}, nil
}

// MustNew is New panicking on error, for statically known specs.
func MustNew(spec Spec) *Plan {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// NumAtoms returns the number of atoms in the plan's conjunction.
func (p *Plan) NumAtoms() int { return len(p.spec.Atoms) }

// AtomRel returns the relation name of atom i.
func (p *Plan) AtomRel(i int) string { return p.spec.Atoms[i].Rel }

// Name returns the spec name.
func (p *Plan) Name() string { return p.spec.Name }

func validate(spec *Spec) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("plan %s: %s", spec.Name, fmt.Sprintf(format, args...))
	}
	checkTerm := func(t Term, where string) error {
		if t.IsReg() && t.Reg >= spec.NumRegs {
			return bad("%s references register %d beyond NumRegs %d", where, t.Reg, spec.NumRegs)
		}
		return nil
	}
	for i, a := range spec.Atoms {
		for _, t := range a.Terms {
			if err := checkTerm(t, fmt.Sprintf("atom %d (%s)", i, a.Rel)); err != nil {
				return err
			}
		}
	}
	for i, f := range spec.Filters {
		switch f.Kind {
		case FilterNotIn:
			for _, t := range f.Terms {
				if err := checkTerm(t, fmt.Sprintf("filter %d (not-in %s)", i, f.Rel)); err != nil {
					return err
				}
			}
		case FilterEq, FilterNeq:
			if err := checkTerm(f.L, fmt.Sprintf("filter %d", i)); err != nil {
				return err
			}
			if err := checkTerm(f.R, fmt.Sprintf("filter %d", i)); err != nil {
				return err
			}
		case FilterGuard:
			for _, r := range f.Regs {
				if r < 0 || r >= spec.NumRegs {
					return bad("guard filter %d reads register %d beyond NumRegs %d", i, r, spec.NumRegs)
				}
			}
		default:
			return bad("filter %d has unknown kind %d", i, f.Kind)
		}
	}
	for _, t := range spec.Head {
		if err := checkTerm(t, "head"); err != nil {
			return err
		}
	}
	for _, r := range spec.Inputs {
		if r < 0 || r >= spec.NumRegs {
			return bad("input register %d beyond NumRegs %d", r, spec.NumRegs)
		}
	}
	return nil
}

// sched returns (building on first use) the schedule for the given
// pin. card supplies relation cardinality estimates for order
// tie-breaks and may be nil (ties then fall back to atom index).
func (p *Plan) sched(pin int, card func(rel string) int) (*schedule, error) {
	idx := pin + 1
	if idx < 0 || idx >= len(p.scheds) {
		return nil, fmt.Errorf("plan %s: pin %d out of range (%d atoms)", p.spec.Name, pin, len(p.spec.Atoms))
	}
	slot := &p.scheds[idx]
	slot.once.Do(func() { slot.s.Store(compile(&p.spec, pin, card)) })
	s := slot.s.Load()
	if s.err != nil {
		return nil, s.err
	}
	return s, nil
}

// peekSched returns the schedule for pin if an execution has already
// bound it, or a throwaway cardinality-blind compile otherwise —
// WITHOUT populating the cache, so explaining a plan never changes
// the ordering later executions run with.
func (p *Plan) peekSched(pin int) (*schedule, error) {
	idx := pin + 1
	if idx < 0 || idx >= len(p.scheds) {
		return nil, fmt.Errorf("plan %s: pin %d out of range (%d atoms)", p.spec.Name, pin, len(p.spec.Atoms))
	}
	if s := p.scheds[idx].s.Load(); s != nil {
		if s.err != nil {
			return nil, s.err
		}
		return s, nil
	}
	s := compile(&p.spec, pin, nil)
	if s.err != nil {
		return nil, s.err
	}
	return s, nil
}

// Run executes the plan against full. When pin >= 0, atom pin draws
// its tuples from delta instead of full — the semi-naive pinned-atom
// evaluation; negation anti-probes always read full. args supplies
// the Spec.Inputs registers in order; guard resolves FilterGuard
// filters (may be nil when the spec has none). Result tuples are
// added to out.
func (p *Plan) Run(full, delta *fact.Instance, pin int, args []fact.Value, guard GuardFunc, out *fact.Relation) error {
	return p.RunSink(full, delta, pin, args, guard, out)
}

// RunSink is Run emitting into any fact.Sink: a plain relation, or a
// delta staging sink (fact.Delta.Sink) so semi-naive round drivers
// receive whole column slabs from the batch pipeline without an
// intermediate head relation.
func (p *Plan) RunSink(full, delta *fact.Instance, pin int, args []fact.Value, guard GuardFunc, out fact.Sink) error {
	s, err := p.sched(pin, cardOf(full))
	if err != nil {
		return err
	}
	relFor := func(atom int, rel string) *fact.Relation {
		if atom == pin {
			return delta.Relation(rel)
		}
		return full.Relation(rel)
	}
	// Pipeline selection: large inputs take the columnar batch path
	// (merge joins on sorted ID runs, vectorized probes, one arena
	// append — see batch.go), small ones the register-slot executor
	// below. A refused batch (the materialization cap) falls through
	// to the tuple path, which streams.
	if p.useBatch(s, relFor) {
		if done, err := p.runBatch(s, args, guard, relFor, full.Relation, out); done {
			return err
		}
	}
	fr := frame{
		spec: &p.spec, instrs: s.instrs, guard: guard, out: out,
		relFor:   relFor,
		notInRel: full.Relation,
	}
	return fr.run(args)
}

// RunRels executes the plan with each atom i reading rels[i] directly
// instead of resolving relation names against an instance — the mode
// the algebra bridging join uses, where the joined sides are
// materialized subexpression results. args supplies the Spec.Inputs
// registers, exactly as in Run. Specs run this way must not contain
// FilterNotIn or FilterGuard filters.
func (p *Plan) RunRels(rels []*fact.Relation, args []fact.Value, out *fact.Relation) error {
	if len(rels) != len(p.spec.Atoms) {
		return fmt.Errorf("plan %s: RunRels got %d relations for %d atoms", p.spec.Name, len(rels), len(p.spec.Atoms))
	}
	for _, f := range p.spec.Filters {
		// Without an instance there is nothing to anti-probe against,
		// and no guard resolver: error out instead of silently
		// accepting tuples the spec forbids.
		if f.Kind == FilterNotIn || f.Kind == FilterGuard {
			return fmt.Errorf("plan %s: RunRels cannot execute %s filters", p.spec.Name,
				map[FilterKind]string{FilterNotIn: "not-in", FilterGuard: "guard"}[f.Kind])
		}
	}
	s, err := p.sched(-1, func(rel string) int {
		// Estimate by name over the supplied relations (first match).
		for i, a := range p.spec.Atoms {
			if a.Rel == rel && rels[i] != nil {
				return rels[i].Len()
			}
		}
		return 0
	})
	if err != nil {
		return err
	}
	fr := frame{
		spec: &p.spec, instrs: s.instrs, out: out,
		relFor:   func(atom int, rel string) *fact.Relation { return rels[atom] },
		notInRel: func(string) *fact.Relation { return nil },
	}
	return fr.run(args)
}

func cardOf(I *fact.Instance) func(rel string) int {
	return func(rel string) int {
		r := I.Relation(rel)
		if r == nil {
			return 0
		}
		return r.Len()
	}
}

// frame is the per-execution state: the register file plus resolved
// relation accessors. It lives for one Run call only.
type frame struct {
	spec     *Spec
	instrs   []instr
	guard    GuardFunc
	out      fact.Sink
	relFor   func(atom int, rel string) *fact.Relation
	notInRel func(rel string) *fact.Relation
	regs     []fact.Value
	err      error
}

func (fr *frame) run(args []fact.Value) error {
	if len(fr.spec.Atoms) == 0 && !fr.spec.EmitOnEmpty {
		return nil
	}
	if len(args) != len(fr.spec.Inputs) {
		return fmt.Errorf("plan %s: got %d args for %d input registers", fr.spec.Name, len(args), len(fr.spec.Inputs))
	}
	fr.regs = make([]fact.Value, fr.spec.NumRegs)
	for i, r := range fr.spec.Inputs {
		fr.regs[r] = args[i]
	}
	fr.exec(0)
	return fr.err
}

// resolve returns the value of a term under the current registers.
// Terms reaching here are bound by the compile-time discipline.
func (fr *frame) resolve(t Term) fact.Value {
	if t.IsReg() {
		return fr.regs[t.Reg]
	}
	return t.Const
}

func (fr *frame) exec(i int) {
	if fr.err != nil {
		return
	}
	if i == len(fr.instrs) {
		t := make(fact.Tuple, len(fr.spec.Head))
		for j, h := range fr.spec.Head {
			t[j] = fr.resolve(h)
		}
		fr.out.Add(t)
		return
	}
	in := &fr.instrs[i]
	switch in.kind {
	case opScan, opProbe:
		rel := fr.relFor(in.atom, in.rel)
		if rel == nil || rel.Arity() != in.arity {
			return
		}
		step := func(tuple fact.Tuple) bool {
			// Binds first (in column order), then checks: a check may
			// compare a later column against a register this very
			// tuple just bound (a repeated variable within the atom).
			for _, b := range in.binds {
				fr.regs[b.reg] = tuple[b.col]
			}
			for _, c := range in.checks {
				if tuple[c.col] != fr.resolve(c.t) {
					return fr.err == nil
				}
			}
			fr.exec(i + 1)
			return fr.err == nil
		}
		if in.kind == opProbe {
			for _, tuple := range rel.Lookup(in.probeCol, fr.resolve(in.probe)) {
				if !step(tuple) {
					break
				}
			}
			return
		}
		rel.Each(step)
	case opNotIn:
		t := make(fact.Tuple, len(in.terms))
		for j, tm := range in.terms {
			t[j] = fr.resolve(tm)
		}
		if rel := fr.notInRel(in.rel); rel != nil && rel.Contains(t) {
			return
		}
		fr.exec(i + 1)
	case opCheckEq:
		if fr.resolve(in.l) == fr.resolve(in.r) {
			fr.exec(i + 1)
		}
	case opCheckNeq:
		if fr.resolve(in.l) != fr.resolve(in.r) {
			fr.exec(i + 1)
		}
	case opAssign:
		fr.regs[in.l.Reg] = fr.resolve(in.r)
		fr.exec(i + 1)
	case opGuard:
		ok, err := fr.guard(in.guard, fr.regs)
		if err != nil {
			fr.err = err
			return
		}
		if ok {
			fr.exec(i + 1)
		}
	}
}
