package plan

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"declnet/internal/fact"
)

func inst(facts ...fact.Fact) *fact.Instance {
	I := fact.NewInstance()
	for _, f := range facts {
		I.AddFact(f)
	}
	return I
}

func f(rel string, args ...fact.Value) fact.Fact { return fact.NewFact(rel, args...) }

// both runs the plan through the compiled executor and the map-based
// reference executor and checks they agree, returning the result.
func both(t *testing.T, p *Plan, full, delta *fact.Instance, pin int, args []fact.Value, guard GuardFunc) *fact.Relation {
	t.Helper()
	out := fact.NewRelation(len(p.spec.Head))
	if err := p.Run(full, delta, pin, args, guard, out); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ref := fact.NewRelation(len(p.spec.Head))
	if err := p.RunReference(full, delta, pin, args, guard, ref); err != nil {
		t.Fatalf("RunReference: %v", err)
	}
	if !out.Equal(ref) {
		t.Fatalf("compiled %v != reference %v\nplan:\n%s", out, ref, p.Explain(pin))
	}
	return out
}

func TestTwoAtomJoin(t *testing.T) {
	// q(x,z) :- T(x,y), T(y,z)
	p := MustNew(Spec{
		Name: "tc2", NumRegs: 3, RegNames: []string{"x", "y", "z"},
		Head:  []Term{Reg(0), Reg(2)},
		Atoms: []Atom{{Rel: "T", Terms: []Term{Reg(0), Reg(1)}}, {Rel: "T", Terms: []Term{Reg(1), Reg(2)}}},
	})
	I := inst(f("T", "a", "b"), f("T", "b", "c"), f("T", "c", "d"))
	out := both(t, p, I, nil, -1, nil, nil)
	want := fact.NewRelation(2)
	want.Add(fact.Tuple{"a", "c"})
	want.Add(fact.Tuple{"b", "d"})
	if !out.Equal(want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestRepeatedVarAndConst(t *testing.T) {
	// q(x) :- S(x, x, 'k')
	p := MustNew(Spec{
		Name: "rep", NumRegs: 1, RegNames: []string{"x"},
		Head:  []Term{Reg(0)},
		Atoms: []Atom{{Rel: "S", Terms: []Term{Reg(0), Reg(0), Const("k")}}},
	})
	I := inst(f("S", "a", "a", "k"), f("S", "a", "b", "k"), f("S", "c", "c", "x"), f("S", "d", "d", "k"))
	out := both(t, p, I, nil, -1, nil, nil)
	want := fact.NewRelation(1)
	want.Add(fact.Tuple{"a"})
	want.Add(fact.Tuple{"d"})
	if !out.Equal(want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestFiltersEqNeqNotIn(t *testing.T) {
	// q(x,y) :- R(x,y), not T(y), x != y, z = x  (z is head-irrelevant
	// but exercises the equality assignment)
	p := MustNew(Spec{
		Name: "filters", NumRegs: 3, RegNames: []string{"x", "y", "z"},
		Head:  []Term{Reg(0), Reg(1)},
		Atoms: []Atom{{Rel: "R", Terms: []Term{Reg(0), Reg(1)}}},
		Filters: []Filter{
			{Kind: FilterNotIn, Rel: "T", Terms: []Term{Reg(1)}},
			{Kind: FilterNeq, L: Reg(0), R: Reg(1)},
			{Kind: FilterEq, L: Reg(2), R: Reg(0)},
		},
	})
	I := inst(f("R", "a", "b"), f("R", "a", "a"), f("R", "b", "c"), f("T", "c"))
	out := both(t, p, I, nil, -1, nil, nil)
	want := fact.NewRelation(2)
	want.Add(fact.Tuple{"a", "b"})
	if !out.Equal(want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestInputRegisters(t *testing.T) {
	// q(n, x) with n pre-bound :- R(n, x)
	p := MustNew(Spec{
		Name: "inputs", NumRegs: 2, RegNames: []string{"n", "x"},
		Head:   []Term{Reg(0), Reg(1)},
		Atoms:  []Atom{{Rel: "R", Terms: []Term{Reg(0), Reg(1)}}},
		Inputs: []int{0},
	})
	I := inst(f("R", "n1", "a"), f("R", "n1", "b"), f("R", "n2", "c"))
	out := both(t, p, I, nil, -1, []fact.Value{"n1"}, nil)
	want := fact.NewRelation(2)
	want.Add(fact.Tuple{"n1", "a"})
	want.Add(fact.Tuple{"n1", "b"})
	if !out.Equal(want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestGuardFilter(t *testing.T) {
	p := MustNew(Spec{
		Name: "guard", NumRegs: 2, RegNames: []string{"x", "y"},
		Head:    []Term{Reg(0), Reg(1)},
		Atoms:   []Atom{{Rel: "R", Terms: []Term{Reg(0), Reg(1)}}},
		Filters: []Filter{{Kind: FilterGuard, Regs: []int{1}, Guard: 0}},
	})
	I := inst(f("R", "a", "b"), f("R", "a", "keep"), f("R", "c", "keep"))
	guard := func(gi int, regs []fact.Value) (bool, error) {
		if gi != 0 {
			return false, fmt.Errorf("unexpected guard index %d", gi)
		}
		return regs[1] == "keep", nil
	}
	out := both(t, p, I, nil, -1, nil, guard)
	want := fact.NewRelation(2)
	want.Add(fact.Tuple{"a", "keep"})
	want.Add(fact.Tuple{"c", "keep"})
	if !out.Equal(want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestEmitOnEmpty(t *testing.T) {
	I := inst(f("R", "a"))
	// Datalog convention: a fact rule emits its (ground) head once.
	on := MustNew(Spec{Name: "on", Head: []Term{Const("a"), Const("b")}, EmitOnEmpty: true})
	out := both(t, on, I, nil, -1, nil, nil)
	if out.Len() != 1 {
		t.Fatalf("EmitOnEmpty plan emitted %d tuples, want 1", out.Len())
	}
	// FO convention: a zero-atom branch emits nothing.
	off := MustNew(Spec{Name: "off", Head: nil})
	out = both(t, off, I, nil, -1, nil, nil)
	if out.Len() != 0 {
		t.Fatalf("zero-atom plan emitted %d tuples, want 0", out.Len())
	}
}

func TestDeltaPinUnionEquation(t *testing.T) {
	// Semi-naive exactness: Eval(full) = Eval(old) ∪ ⋃_i
	// Run(full, delta, pin=i) for a positive conjunction.
	p := MustNew(Spec{
		Name: "delta", NumRegs: 3, RegNames: []string{"x", "y", "z"},
		Head:  []Term{Reg(0), Reg(2)},
		Atoms: []Atom{{Rel: "T", Terms: []Term{Reg(0), Reg(1)}}, {Rel: "T", Terms: []Term{Reg(1), Reg(2)}}},
	})
	old := inst(f("T", "a", "b"), f("T", "b", "c"))
	delta := inst(f("T", "c", "d"), f("T", "d", "a"))
	full := old.Clone()
	full.UnionWith(delta)

	wantFull := fact.NewRelation(2)
	if err := p.Run(full, nil, -1, nil, nil, wantFull); err != nil {
		t.Fatal(err)
	}
	got := fact.NewRelation(2)
	if err := p.Run(old, nil, -1, nil, nil, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumAtoms(); i++ {
		if err := p.Run(full, delta, i, nil, nil, got); err != nil {
			t.Fatal(err)
		}
		// Pinned variants agree across executors too.
		ref := fact.NewRelation(2)
		if err := p.RunReference(full, delta, i, nil, nil, ref); err != nil {
			t.Fatal(err)
		}
		pinOnly := fact.NewRelation(2)
		if err := p.Run(full, delta, i, nil, nil, pinOnly); err != nil {
			t.Fatal(err)
		}
		if !pinOnly.Equal(ref) {
			t.Fatalf("pin %d: compiled %v != reference %v", i, pinOnly, ref)
		}
	}
	if !got.Equal(wantFull) {
		t.Fatalf("semi-naive union %v != full evaluation %v", got, wantFull)
	}
}

func TestUnsafeSpecRejected(t *testing.T) {
	// Head register never bound.
	_, err := New(Spec{Name: "unsafeHead", NumRegs: 1, Head: []Term{Reg(0)}, EmitOnEmpty: true})
	if err == nil {
		t.Fatal("unsafe head accepted")
	}
	// Neq over never-bound registers.
	_, err = New(Spec{Name: "unsafeNeq", NumRegs: 2,
		Filters: []Filter{{Kind: FilterNeq, L: Reg(0), R: Reg(1)}}, EmitOnEmpty: true})
	if err == nil {
		t.Fatal("unsafe filter accepted")
	}
	// Register index out of range.
	_, err = New(Spec{Name: "badReg", NumRegs: 1, Atoms: []Atom{{Rel: "R", Terms: []Term{Reg(3)}}}})
	if err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestRunRels(t *testing.T) {
	// The algebra mode: atoms read positionally supplied relations.
	p := MustNew(Spec{
		Name: "bridge", NumRegs: 3,
		Head:  []Term{Reg(0), Reg(1), Reg(1), Reg(2)},
		Atoms: []Atom{{Rel: "L", Terms: []Term{Reg(0), Reg(1)}}, {Rel: "R", Terms: []Term{Reg(1), Reg(2)}}},
	})
	l := fact.NewRelation(2)
	l.Add(fact.Tuple{"a", "b"})
	l.Add(fact.Tuple{"c", "d"})
	r := fact.NewRelation(2)
	r.Add(fact.Tuple{"b", "z"})
	out := fact.NewRelation(4)
	if err := p.RunRels([]*fact.Relation{l, r}, nil, out); err != nil {
		t.Fatal(err)
	}
	want := fact.NewRelation(4)
	want.Add(fact.Tuple{"a", "b", "b", "z"})
	if !out.Equal(want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestMissingOrMismatchedRelation(t *testing.T) {
	p := MustNew(Spec{
		Name: "missing", NumRegs: 1,
		Head:  []Term{Reg(0)},
		Atoms: []Atom{{Rel: "Nope", Terms: []Term{Reg(0)}}},
	})
	// Absent relation: no tuples, no error.
	out := both(t, p, inst(f("Other", "a")), nil, -1, nil, nil)
	if out.Len() != 0 {
		t.Fatalf("absent relation produced %v", out)
	}
	// Arity mismatch: same.
	out = both(t, p, inst(f("Nope", "a", "b")), nil, -1, nil, nil)
	if out.Len() != 0 {
		t.Fatalf("arity-mismatched relation produced %v", out)
	}
}

func TestExplainRendering(t *testing.T) {
	p := MustNew(Spec{
		Name: "exp", NumRegs: 3, RegNames: []string{"x", "y", "z"},
		Head:  []Term{Reg(0), Reg(2)},
		Atoms: []Atom{{Rel: "S", Terms: []Term{Reg(0), Reg(1)}}, {Rel: "T", Terms: []Term{Reg(1), Reg(2)}}},
		Filters: []Filter{
			{Kind: FilterNotIn, Rel: "U", Terms: []Term{Reg(2)}},
		},
	})
	got := p.ExplainAll()
	for _, want := range []string{"scan", "probe", "check not U(z)", "emit (x,z)", "delta pin S(x,y)", "delta pin T(y,z)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("explain output missing %q:\n%s", want, got)
		}
	}
}

// TestExplainDoesNotBindSchedule: rendering a plan must not populate
// the schedule cache — the first execution still compiles with the
// instance's cardinalities.
func TestExplainDoesNotBindSchedule(t *testing.T) {
	p := MustNew(Spec{
		Name: "peek", NumRegs: 3, RegNames: []string{"x", "y", "z"},
		Head:  []Term{Reg(0), Reg(2)},
		Atoms: []Atom{{Rel: "Big", Terms: []Term{Reg(0), Reg(1)}}, {Rel: "Small", Terms: []Term{Reg(1), Reg(2)}}},
	})
	_ = p.ExplainAll()
	for i := range p.scheds {
		if p.scheds[i].s.Load() != nil {
			t.Fatalf("explain populated schedule slot %d", i)
		}
	}
	// First Run binds with cardinalities: Small (1 tuple) is scanned,
	// Big (8 tuples) probed — the index tie-break alone would scan Big.
	I := inst(f("Small", "m", "z"))
	for i := 0; i < 8; i++ {
		I.AddFact(f("Big", fact.Value(fmt.Sprintf("b%d", i)), "m"))
	}
	out := fact.NewRelation(2)
	if err := p.Run(I, nil, -1, nil, nil, out); err != nil {
		t.Fatal(err)
	}
	if got := p.Explain(-1); !strings.Contains(got, "scan Small(y,z)") {
		t.Fatalf("cardinality tie-break lost (Small not scanned first):\n%s", got)
	}
}

func TestRunRelsRejectsInstanceFilters(t *testing.T) {
	p := MustNew(Spec{
		Name: "relsGuard", NumRegs: 1,
		Head:    []Term{Reg(0)},
		Atoms:   []Atom{{Rel: "L", Terms: []Term{Reg(0)}}},
		Filters: []Filter{{Kind: FilterNotIn, Rel: "X", Terms: []Term{Reg(0)}}},
	})
	r := fact.NewRelation(1)
	r.Add(fact.Tuple{"a"})
	if err := p.RunRels([]*fact.Relation{r}, nil, fact.NewRelation(1)); err == nil {
		t.Fatal("RunRels accepted a not-in filter it cannot execute")
	}
}

// TestRandomizedDifferential cross-checks the compiled executor
// against the reference executor on random specs and instances,
// including pinned delta variants.
func TestRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	vals := []fact.Value{"a", "b", "c", "d"}
	rels := []string{"R", "S"}
	for trial := 0; trial < 400; trial++ {
		nRegs := 1 + rng.IntN(4)
		nAtoms := 1 + rng.IntN(3)
		spec := Spec{Name: fmt.Sprintf("rand%d", trial), NumRegs: nRegs}
		term := func() Term {
			if rng.IntN(5) == 0 {
				return Const(vals[rng.IntN(len(vals))])
			}
			return Reg(rng.IntN(nRegs))
		}
		for i := 0; i < nAtoms; i++ {
			ar := 1 + rng.IntN(2)
			a := Atom{Rel: rels[rng.IntN(2)] + fmt.Sprint(ar)}
			for j := 0; j < ar; j++ {
				a.Terms = append(a.Terms, term())
			}
			spec.Atoms = append(spec.Atoms, a)
		}
		bound := map[int]bool{}
		for _, a := range spec.Atoms {
			for _, tm := range a.Terms {
				if tm.IsReg() {
					bound[tm.Reg] = true
				}
			}
		}
		var boundRegs []int
		for r := 0; r < nRegs; r++ {
			if bound[r] {
				boundRegs = append(boundRegs, r)
			}
		}
		if len(boundRegs) == 0 {
			continue
		}
		pickBound := func() Term { return Reg(boundRegs[rng.IntN(len(boundRegs))]) }
		for i := 0; i < rng.IntN(3); i++ {
			switch rng.IntN(3) {
			case 0:
				spec.Filters = append(spec.Filters, Filter{Kind: FilterNeq, L: pickBound(), R: pickBound()})
			case 1:
				spec.Filters = append(spec.Filters, Filter{Kind: FilterEq, L: pickBound(), R: pickBound()})
			case 2:
				spec.Filters = append(spec.Filters, Filter{Kind: FilterNotIn, Rel: "S1", Terms: []Term{pickBound()}})
			}
		}
		for i := 0; i < 1+rng.IntN(2); i++ {
			spec.Head = append(spec.Head, pickBound())
		}
		p, err := New(spec)
		if err != nil {
			t.Fatalf("trial %d: %v\nspec: %+v", trial, err, spec)
		}
		full := fact.NewInstance()
		delta := fact.NewInstance()
		for k := 0; k < 3+rng.IntN(10); k++ {
			rel := rels[rng.IntN(2)]
			ar := 1 + rng.IntN(2)
			args := make([]fact.Value, ar)
			for j := range args {
				args[j] = vals[rng.IntN(len(vals))]
			}
			ft := fact.Fact{Rel: rel + fmt.Sprint(ar), Args: args}
			full.AddFact(ft)
			if rng.IntN(3) == 0 {
				delta.AddFact(ft)
			}
		}
		for pin := -1; pin < len(spec.Atoms); pin++ {
			d := delta
			if pin < 0 {
				d = nil
			}
			out := fact.NewRelation(len(spec.Head))
			if err := p.Run(full, d, pin, nil, nil, out); err != nil {
				t.Fatalf("trial %d pin %d: Run: %v", trial, pin, err)
			}
			ref := fact.NewRelation(len(spec.Head))
			if err := p.RunReference(full, d, pin, nil, nil, ref); err != nil {
				t.Fatalf("trial %d pin %d: RunReference: %v", trial, pin, err)
			}
			if !out.Equal(ref) {
				t.Fatalf("trial %d pin %d: compiled %v != reference %v\nplan:\n%s",
					trial, pin, out, ref, p.Explain(pin))
			}
		}
	}
}
