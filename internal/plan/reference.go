package plan

import (
	"fmt"

	"declnet/internal/fact"
)

// RunReference executes the spec with the pre-plan-layer evaluation
// strategy: no compiled schedule (the join order is re-derived
// greedily at run time, per partial binding state) and bindings held
// in a hash map instead of register slots. It exists as
//
//   - the independent oracle of the differential tests (it shares no
//     scheduling or register code with Run), and
//   - the "re-plan every evaluation, map bindings" baseline of the
//     E17 plan-runtime ablation benchmark.
//
// The emitted tuple set is identical to Run's for every valid spec.
func (p *Plan) RunReference(full, delta *fact.Instance, pin int, args []fact.Value, guard GuardFunc, out *fact.Relation) error {
	spec := &p.spec
	if len(spec.Atoms) == 0 && !spec.EmitOnEmpty {
		return nil
	}
	if len(args) != len(spec.Inputs) {
		return fmt.Errorf("plan %s: got %d args for %d input registers", spec.Name, len(args), len(spec.Inputs))
	}
	if pin >= len(spec.Atoms) {
		return fmt.Errorf("plan %s: pin %d out of range (%d atoms)", spec.Name, pin, len(spec.Atoms))
	}
	bind := make(map[int]fact.Value, spec.NumRegs)
	for i, r := range spec.Inputs {
		bind[r] = args[i]
	}
	r := &refRun{spec: spec, full: full, delta: delta, pin: pin, guard: guard, out: out,
		bind: bind, doneA: make([]bool, len(spec.Atoms)), doneF: make([]bool, len(spec.Filters))}
	r.rec(0, len(spec.Atoms)+len(spec.Filters))
	return r.err
}

type refRun struct {
	spec        *Spec
	full, delta *fact.Instance
	pin         int
	guard       GuardFunc
	out         *fact.Relation
	bind        map[int]fact.Value
	doneA       []bool
	doneF       []bool
	err         error
}

func (r *refRun) resolve(t Term) (fact.Value, bool) {
	if !t.IsReg() {
		return t.Const, true
	}
	v, ok := r.bind[t.Reg]
	return v, ok
}

// pickNext mirrors the historical greedy schedulers: a fully bound
// filter first (a cheap check), then a half-bound equality (it binds
// a register for free), then the positive atom with the most bound
// terms. Returns (isFilter, index) or index -1 when nothing is
// resolvable.
func (r *refRun) pickNext(first bool) (bool, int) {
	if first && r.pin >= 0 && !r.doneA[r.pin] {
		return false, r.pin
	}
	halfEq := -1
	for i := range r.spec.Filters {
		if r.doneF[i] {
			continue
		}
		f := &r.spec.Filters[i]
		switch f.Kind {
		case FilterNotIn:
			ok := true
			for _, t := range f.Terms {
				if _, b := r.resolve(t); !b {
					ok = false
					break
				}
			}
			if ok {
				return true, i
			}
		case FilterNeq:
			_, lb := r.resolve(f.L)
			_, rb := r.resolve(f.R)
			if lb && rb {
				return true, i
			}
		case FilterEq:
			_, lb := r.resolve(f.L)
			_, rb := r.resolve(f.R)
			if lb && rb {
				return true, i
			}
			if (lb || rb) && halfEq < 0 {
				halfEq = i
			}
		case FilterGuard:
			ok := true
			for _, reg := range f.Regs {
				if _, b := r.bind[reg]; !b {
					ok = false
					break
				}
			}
			if ok {
				return true, i
			}
		}
	}
	if halfEq >= 0 {
		return true, halfEq
	}
	best, bestScore := -1, -1
	for i, a := range r.spec.Atoms {
		if r.doneA[i] {
			continue
		}
		score := 0
		for _, t := range a.Terms {
			if _, b := r.resolve(t); b {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return false, best
}

func (r *refRun) rec(depth, remaining int) {
	if r.err != nil {
		return
	}
	if remaining == 0 {
		t := make(fact.Tuple, len(r.spec.Head))
		for j, h := range r.spec.Head {
			v, ok := r.resolve(h)
			if !ok {
				r.err = fmt.Errorf("plan %s: head register %s unbound (unsafe spec)", r.spec.Name, r.spec.regName(h.Reg))
				return
			}
			t[j] = v
		}
		r.out.Add(t)
		return
	}
	isFilter, idx := r.pickNext(depth == 0)
	if idx < 0 {
		r.err = fmt.Errorf("plan %s: no resolvable atom or filter (unsafe spec)", r.spec.Name)
		return
	}
	if isFilter {
		r.doneF[idx] = true
		defer func() { r.doneF[idx] = false }()
		f := &r.spec.Filters[idx]
		switch f.Kind {
		case FilterNotIn:
			t := make(fact.Tuple, len(f.Terms))
			for j, tm := range f.Terms {
				t[j], _ = r.resolve(tm)
			}
			if rel := r.full.Relation(f.Rel); rel != nil && rel.Contains(t) {
				return
			}
			r.rec(depth, remaining-1)
		case FilterNeq:
			lv, _ := r.resolve(f.L)
			rv, _ := r.resolve(f.R)
			if lv != rv {
				r.rec(depth, remaining-1)
			}
		case FilterEq:
			lv, lb := r.resolve(f.L)
			rv, rb := r.resolve(f.R)
			if lb && rb {
				if lv == rv {
					r.rec(depth, remaining-1)
				}
				return
			}
			if lb {
				r.bind[f.R.Reg] = lv
				defer delete(r.bind, f.R.Reg)
			} else {
				r.bind[f.L.Reg] = rv
				defer delete(r.bind, f.L.Reg)
			}
			r.rec(depth, remaining-1)
		case FilterGuard:
			regs := make([]fact.Value, r.spec.NumRegs)
			for reg, v := range r.bind {
				regs[reg] = v
			}
			ok, err := r.guard(f.Guard, regs)
			if err != nil {
				r.err = err
				return
			}
			if ok {
				r.rec(depth, remaining-1)
			}
		}
		return
	}

	a := r.spec.Atoms[idx]
	rel := r.full.Relation(a.Rel)
	if idx == r.pin {
		rel = r.delta.Relation(a.Rel)
	}
	if rel == nil || rel.Arity() != len(a.Terms) {
		return
	}
	r.doneA[idx] = true
	defer func() { r.doneA[idx] = false }()
	step := func(tuple fact.Tuple) bool {
		var newly []int
		ok := true
		for j, tm := range a.Terms {
			v, b := r.resolve(tm)
			if b {
				if v != tuple[j] {
					ok = false
					break
				}
				continue
			}
			r.bind[tm.Reg] = tuple[j]
			newly = append(newly, tm.Reg)
		}
		if ok {
			r.rec(depth+1, remaining-1)
		}
		for _, reg := range newly {
			delete(r.bind, reg)
		}
		return r.err == nil
	}
	// Probe a column index when some term is already bound.
	for col, tm := range a.Terms {
		if v, ok := r.resolve(tm); ok {
			for _, tuple := range rel.Lookup(col, v) {
				if !step(tuple) {
					break
				}
			}
			return
		}
	}
	rel.Each(step)
}
