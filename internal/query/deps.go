package query

// This file is the extraction contract between the concrete query
// languages (fo, datalog, while, algebra, opaque Funcs) and the static
// CALM analyzer (internal/sa): a query exposes its reads as *polarized
// dependencies* — which relation, read positively, under negation, or
// through an opaque guard — instead of the flat name list of Rels().
// The analyzer composes these per-query dependencies into the
// predicate dependency graph of a whole transducer and derives
// monotonicity, stratification and emptiness verdicts with witnesses.
//
// Everything here is OPTIONAL for a Query implementation: DepsOf,
// ExplainMonotone and PossiblyNonempty fall back to sound conservative
// answers derived from Rels() and SyntacticallyMonotone(), so opaque
// queries degrade to "reads everything through a guard" rather than
// breaking the analysis.

import "fmt"

// Polarity classifies how a query's output depends on a read relation.
type Polarity int8

const (
	// PolPos: the output can only grow as the relation grows
	// (positive atom occurrence, monotone composition).
	PolPos Polarity = iota
	// PolNeg: the occurrence is under a negation — growing the
	// relation can shrink the output.
	PolNeg
	// PolGuard: the dependency runs through a construct whose
	// monotonicity is unknown (universal quantifier, aggregate-like
	// condition, opaque Go function). Sound reading: anything may
	// happen when the relation grows.
	PolGuard
)

func (p Polarity) String() string {
	switch p {
	case PolPos:
		return "+"
	case PolNeg:
		return "-"
	case PolGuard:
		return "?"
	}
	return "!"
}

// Join returns the combined polarity of two occurrences of the same
// relation: agreeing occurrences keep their sign, disagreeing ones
// degrade to PolGuard (the top of the polarity lattice).
func (p Polarity) Join(q Polarity) Polarity {
	if p == q {
		return p
	}
	return PolGuard
}

// Temporality classifies WHEN a dependency acts, for temporal
// languages (Dedalus §8): within the same time slice, at the next
// timestamp, or at an arbitrary later timestamp.
type Temporality int8

const (
	// TempNow: same-timestamp (deductive) dependency.
	TempNow Temporality = iota
	// TempNext: successor-timestamp (inductive) dependency.
	TempNext
	// TempAsync: arbitrary-later-timestamp (async) dependency.
	TempAsync
)

func (t Temporality) String() string {
	switch t {
	case TempNow:
		return "now"
	case TempNext:
		return "next"
	case TempAsync:
		return "async"
	}
	return "?"
}

// Dep is one polarized read dependency of a query.
type Dep struct {
	// Rel is the relation read.
	Rel string
	// Polarity is the combined polarity of all occurrences this Dep
	// stands for.
	Polarity Polarity
	// Temporality is TempNow except for dedalus-derived dependencies.
	Temporality Temporality
	// Branch groups dependencies by disjunct of the query (fo branch,
	// datalog rule); -1 when the query has no disjunctive structure.
	Branch int
	// Required marks a positive dependency the branch cannot fire
	// without: if Rel is empty the branch derives nothing. The
	// provably-empty analysis keys off this.
	Required bool
	// Where locates the occurrence for witnesses ("branch 2, atom
	// S(x,y)"; "rule 1, literal not a(X)").
	Where string
}

func (d Dep) String() string {
	req := ""
	if d.Required {
		req = " (required)"
	}
	return fmt.Sprintf("%s%s%s", d.Polarity, d.Rel, req)
}

// DepAnalyzable is implemented by queries that can report polarized
// dependencies. DepsOf is the accessor with the conservative fallback.
type DepAnalyzable interface {
	Query

	// QueryDeps returns the polarized read dependencies, one entry
	// per (relation, branch) occurrence group.
	QueryDeps() []Dep
}

// DepsOf returns the polarized dependencies of any query. Queries not
// implementing DepAnalyzable degrade soundly: every read is reported
// as PolPos when the query declares syntactic monotonicity (monotone
// in every read, by definition) and PolGuard otherwise.
func DepsOf(q Query) []Dep {
	if q == nil {
		return nil
	}
	if da, ok := q.(DepAnalyzable); ok {
		return da.QueryDeps()
	}
	pol := PolGuard
	if q.SyntacticallyMonotone() {
		pol = PolPos
	}
	deps := make([]Dep, 0, len(q.Rels()))
	for _, r := range q.Rels() {
		deps = append(deps, Dep{Rel: r, Polarity: pol, Branch: -1, Where: "declared read (opaque query)"})
	}
	return deps
}

// MonotoneEvidence is a monotonicity verdict with its reason chain.
// Monotone=true is a PROOF obligation — the soundness harness checks
// that no semantically refutable query ever carries it. Monotone=false
// means "not proved", never "proved non-monotone"; Blockers lists the
// positions that stopped the proof.
type MonotoneEvidence struct {
	Monotone bool
	// Reasons justifies a positive verdict (one entry per applied
	// rule, e.g. "negation not a(X) absorbed by rule 0: ans(X) :- a(X)").
	Reasons []string
	// Blockers lists, for a negative verdict, the positions that
	// blocked the proof ("rule 1: literal not a(X)").
	Blockers []string
}

// MonotoneExplainable is implemented by queries that can explain
// their monotonicity verdict.
type MonotoneExplainable interface {
	Query

	// MonotoneEvidence reports the monotonicity verdict with reasons.
	// It must agree with SyntacticallyMonotone().
	MonotoneEvidence() MonotoneEvidence
}

// ExplainMonotone returns q's monotonicity evidence, synthesizing a
// minimal chain for queries that cannot explain themselves.
func ExplainMonotone(q Query) MonotoneEvidence {
	if q == nil {
		return MonotoneEvidence{Monotone: true, Reasons: []string{"absent query defaults to the empty query"}}
	}
	if me, ok := q.(MonotoneExplainable); ok {
		return me.MonotoneEvidence()
	}
	if q.SyntacticallyMonotone() {
		return MonotoneEvidence{Monotone: true, Reasons: []string{"query declares syntactic monotonicity"}}
	}
	return MonotoneEvidence{Blockers: []string{"opaque query without a monotonicity annotation"}}
}

// EmptinessAnalyzable is implemented by queries that can prove
// emptiness of their result under an assumption about which relations
// can ever hold facts.
type EmptinessAnalyzable interface {
	Query

	// PossiblyNonempty reports whether the query could produce a
	// tuple on SOME instance whose nonempty relations all satisfy
	// populated. False is a proof of emptiness; true is no claim.
	PossiblyNonempty(populated func(rel string) bool) bool
}

// MayProduce reports whether q could produce output when only the
// relations accepted by populated may hold facts. Conservative
// fallback: true (no emptiness claim) — note that opaque queries can
// produce output from EMPTY reads (the emptiness test does), so
// a reads-based fallback would be unsound.
func MayProduce(q Query, populated func(rel string) bool) bool {
	if q == nil {
		return false // missing query defaults to Empty
	}
	if ea, ok := q.(EmptinessAnalyzable); ok {
		return ea.PossiblyNonempty(populated)
	}
	if _, isEmpty := q.(Empty); isEmpty {
		return false
	}
	return true
}
