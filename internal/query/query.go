// Package query defines the abstract notion of a database query used
// throughout the reproduction. The paper's transducers are collections
// of queries over a combined schema; the model is parameterized by the
// local query language L. Every concrete language in this repository
// (first-order logic, Datalog fragments, while-programs, and arbitrary
// Go functions standing in for a computationally complete language)
// implements the Query interface defined here.
package query

import (
	"fmt"
	"sort"

	"declnet/internal/fact"
)

// Query is a k-ary database query over some schema. Eval must be
// deterministic and generic (commute with permutations of dom) for the
// paper's definitions to apply; implementations in this repository are.
type Query interface {
	// Arity is the arity k of the query's output relation.
	Arity() int

	// Rels returns the relation names the query may read, sorted.
	// It is the basis of the syntactic obliviousness check (a
	// transducer is oblivious if no query mentions Id or All).
	Rels() []string

	// Eval computes the query on an instance. The result is a k-ary
	// relation over adom(I) (safety is the implementation's duty).
	Eval(I *fact.Instance) (*fact.Relation, error)

	// SyntacticallyMonotone reports whether the query is monotone by
	// construction (e.g. negation-free). False means "unknown", not
	// "non-monotone".
	SyntacticallyMonotone() bool
}

// DeltaEvaluable is implemented by queries that support exact
// semi-naive delta evaluation, the contract behind incremental
// transducer firing (package transducer) and delta-driven fixpoints.
type DeltaEvaluable interface {
	Query

	// CanDelta reports whether EvalDelta is exact for this query.
	CanDelta() bool

	// EvalDelta returns derivations that may involve at least one fact
	// of delta, evaluated against full (which already contains delta).
	// When CanDelta holds, the result satisfies
	//
	//	Eval(full) = Eval(full \ delta) ∪ EvalDelta(full, delta).
	EvalDelta(full, delta *fact.Instance) (*fact.Relation, error)
}

// CanDelta reports whether q supports exact delta evaluation.
func CanDelta(q Query) bool {
	d, ok := q.(DeltaEvaluable)
	return ok && d.CanDelta()
}

// PlanExplainer is implemented by queries that evaluate through the
// compiled query-plan layer (internal/plan) and can render their
// physical plans: chosen atom order, probe columns, filter and guard
// placement, delta-pinned variants. run.Explain aggregates it per
// transducer so plan regressions are diffable.
type PlanExplainer interface {
	// ExplainPlan renders the query's compiled plans, one op per line.
	ExplainPlan() string
}

// ExplainPlan returns q's plan rendering, or a one-line placeholder
// for queries that do not evaluate through the plan layer (opaque Go
// functions, constant queries).
func ExplainPlan(q Query) string {
	if e, ok := q.(PlanExplainer); ok {
		return e.ExplainPlan()
	}
	return fmt.Sprintf("opaque query (no compiled plan): arity %d, reads %v\n", q.Arity(), q.Rels())
}

// RelBounded is implemented by queries whose result depends only on
// the contents of the relations named by Rels() — not on the ambient
// active domain of the evaluated instance. Such results stay valid as
// long as the read relations are unchanged, no matter how the rest of
// the instance grows; the incremental transducer firing uses this to
// keep cached query results across unrelated state changes.
type RelBounded interface {
	RelBounded() bool
}

// IsRelBounded reports whether q declares rel-bounded evaluation.
func IsRelBounded(q Query) bool {
	b, ok := q.(RelBounded)
	return ok && b.RelBounded()
}

// Empty is the query returning the empty k-ary relation on every
// input. The paper uses it for deletion queries of inflationary
// transducers and as the default for unspecified transducer queries.
type Empty struct{ K int }

// Arity implements Query.
func (e Empty) Arity() int { return e.K }

// Rels implements Query.
func (e Empty) Rels() []string { return nil }

// Eval implements Query.
func (e Empty) Eval(I *fact.Instance) (*fact.Relation, error) {
	return I.Dict().NewRelation(e.K), nil
}

// SyntacticallyMonotone implements Query; the constant-empty query is
// trivially monotone.
func (e Empty) SyntacticallyMonotone() bool { return true }

// RelBounded implements RelBounded; a constant query reads nothing.
func (e Empty) RelBounded() bool { return true }

// Func wraps an arbitrary Go function as a query. This is the
// "computationally complete query language" of Theorem 6(1): any
// partial computable query is expressible. Declared relation reads and
// monotonicity are trusted annotations supplied by the constructor.
type Func struct {
	K        int
	Reads    []string
	Monotone bool
	Name     string
	F        func(I *fact.Instance) (*fact.Relation, error)

	// AdomSensitive marks functions whose result depends on the active
	// domain of the whole instance, beyond the relations in Reads; it
	// disables result caching across unrelated state growth.
	AdomSensitive bool
}

// NewFunc builds a Func query. reads lists the relations f consults;
// it is sorted and deduplicated. The function must depend only on the
// contents of the listed relations (every construction in this
// repository evaluates on a restriction to its reads); a Func whose
// result additionally depends on the ambient active domain must set
// AdomSensitive.
func NewFunc(name string, arity int, reads []string, monotone bool, f func(*fact.Instance) (*fact.Relation, error)) Func {
	rs := dedupSorted(reads)
	return Func{K: arity, Reads: rs, Monotone: monotone, Name: name, F: f}
}

// Arity implements Query.
func (q Func) Arity() int { return q.K }

// Rels implements Query.
func (q Func) Rels() []string { return q.Reads }

// Eval implements Query.
func (q Func) Eval(I *fact.Instance) (*fact.Relation, error) {
	r, err := q.F(I)
	if err != nil {
		return nil, fmt.Errorf("query %s: %w", q.Name, err)
	}
	if r.Arity() != q.K {
		return nil, fmt.Errorf("query %s: produced arity %d, declared %d", q.Name, r.Arity(), q.K)
	}
	return r, nil
}

// SyntacticallyMonotone implements Query.
func (q Func) SyntacticallyMonotone() bool { return q.Monotone }

// RelBounded implements RelBounded per the NewFunc contract.
func (q Func) RelBounded() bool { return !q.AdomSensitive }

// Copy is the query that returns relation rel verbatim (the identity
// query on one relation); it is monotone.
func Copy(rel string, arity int) Func {
	return NewFunc("copy:"+rel, arity, []string{rel}, true,
		func(I *fact.Instance) (*fact.Relation, error) {
			return I.RelationOr(rel, arity).Clone(), nil
		})
}

// UnionOf returns the query computing the union of same-arity
// relations; it is monotone.
func UnionOf(arity int, rels ...string) Func {
	names := append([]string(nil), rels...)
	return NewFunc(fmt.Sprintf("union:%v", names), arity, names, true,
		func(I *fact.Instance) (*fact.Relation, error) {
			out := I.Dict().NewRelation(arity)
			for _, r := range names {
				out.UnionWith(I.RelationOr(r, arity))
			}
			return out, nil
		})
}

func dedupSorted(xs []string) []string {
	if len(xs) == 0 {
		return nil
	}
	cp := append([]string(nil), xs...)
	sort.Strings(cp)
	out := cp[:1]
	for _, x := range cp[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// MergeRels unions the Rels of several queries, sorted, deduplicated.
func MergeRels(qs ...Query) []string {
	var all []string
	for _, q := range qs {
		if q != nil {
			all = append(all, q.Rels()...)
		}
	}
	return dedupSorted(all)
}

// Mentions reports whether the query reads any of the given relations.
func Mentions(q Query, rels ...string) bool {
	if q == nil {
		return false
	}
	reads := q.Rels()
	for _, r := range rels {
		i := sort.SearchStrings(reads, r)
		if i < len(reads) && reads[i] == r {
			return true
		}
	}
	return false
}
