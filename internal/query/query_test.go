package query

import (
	"errors"
	"reflect"
	"testing"

	"declnet/internal/fact"
)

func TestEmptyQuery(t *testing.T) {
	e := Empty{K: 2}
	out, err := e.Eval(fact.FromFacts(fact.NewFact("R", "a", "b")))
	if err != nil || out.Len() != 0 || out.Arity() != 2 {
		t.Errorf("Empty.Eval = %v, %v", out, err)
	}
	if !e.SyntacticallyMonotone() || e.Rels() != nil {
		t.Error("Empty metadata wrong")
	}
}

func TestFuncArityEnforced(t *testing.T) {
	q := NewFunc("bad", 2, nil, false, func(*fact.Instance) (*fact.Relation, error) {
		return fact.NewRelation(1), nil // wrong arity
	})
	if _, err := q.Eval(fact.NewInstance()); err == nil {
		t.Error("arity mismatch not caught")
	}
}

func TestFuncErrorWrapped(t *testing.T) {
	sentinel := errors.New("boom")
	q := NewFunc("failing", 0, nil, false, func(*fact.Instance) (*fact.Relation, error) {
		return nil, sentinel
	})
	if _, err := q.Eval(fact.NewInstance()); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestFuncReadsDeduplicated(t *testing.T) {
	q := NewFunc("q", 0, []string{"b", "a", "b", "a"}, true, nil)
	if got := q.Rels(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Rels = %v", got)
	}
}

func TestCopyAndUnionOf(t *testing.T) {
	I := fact.FromFacts(
		fact.NewFact("R", "a"), fact.NewFact("S", "b"), fact.NewFact("S", "a"),
	)
	c := Copy("R", 1)
	out, err := c.Eval(I)
	if err != nil || out.Len() != 1 {
		t.Errorf("Copy = %v, %v", out, err)
	}
	u := UnionOf(1, "R", "S")
	out, err = u.Eval(I)
	if err != nil || out.Len() != 2 {
		t.Errorf("UnionOf = %v, %v", out, err)
	}
	// Missing relation treated as empty.
	out, err = UnionOf(1, "R", "Z").Eval(I)
	if err != nil || out.Len() != 1 {
		t.Errorf("UnionOf with missing = %v, %v", out, err)
	}
}

func TestMergeRelsAndMentions(t *testing.T) {
	a := Copy("R", 1)
	b := UnionOf(1, "S", "T")
	got := MergeRels(a, b, nil)
	if !reflect.DeepEqual(got, []string{"R", "S", "T"}) {
		t.Errorf("MergeRels = %v", got)
	}
	if !Mentions(b, "S") || Mentions(b, "R") || Mentions(nil, "R") {
		t.Error("Mentions wrong")
	}
}
