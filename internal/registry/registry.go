// Package registry names the paper's transducers, topologies and
// partition strategies so the command-line tools can select them by
// string. It is the only glue between the CLIs and the construction
// library.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"declnet/internal/calm"
	"declnet/internal/channel"
	"declnet/internal/dist"
	"declnet/internal/fact"
	"declnet/internal/network"
	"declnet/internal/transducer"
)

// Entry describes a named transducer.
type Entry struct {
	Build func() (*transducer.Transducer, error)
	// Paper is the paper locus of the construction.
	Paper string
	// Input describes the expected input schema.
	Input string
}

// Transducers returns the named transducer catalogue.
func Transducers() map[string]Entry {
	return map[string]Entry{
		"tc": {
			Build: func() (*transducer.Transducer, error) { return dist.TransitiveClosure(), nil },
			Paper: "Example 3", Input: "S/2 (edges)",
		},
		"eqsel": {
			Build: func() (*transducer.Transducer, error) { return dist.EqualitySelection(), nil },
			Paper: "Example 3", Input: "S/2",
		},
		"first": {
			Build: func() (*transducer.Transducer, error) { return dist.FirstElement(), nil },
			Paper: "Example 2 (inconsistent!)", Input: "S/1",
		},
		"relay": {
			Build: func() (*transducer.Transducer, error) { return dist.RelayOnly(), nil },
			Paper: "Example 4 (not topology-independent)", Input: "S/1",
		},
		"flood1": {
			Build: func() (*transducer.Transducer, error) { return dist.Flood(fact.Schema{"S": 1}, nil, 0) },
			Paper: "Lemma 5(2)", Input: "S/1",
		},
		"flood2": {
			Build: func() (*transducer.Transducer, error) { return dist.Flood(fact.Schema{"S": 2}, nil, 0) },
			Paper: "Lemma 5(2)", Input: "S/2",
		},
		"multicast1": {
			Build: func() (*transducer.Transducer, error) { return dist.Multicast(fact.Schema{"S": 1}, nil, 0) },
			Paper: "Lemma 5(1)", Input: "S/1",
		},
		"multicast2": {
			Build: func() (*transducer.Transducer, error) { return dist.Multicast(fact.Schema{"S": 2}, nil, 0) },
			Paper: "Lemma 5(1)", Input: "S/2",
		},
		"emptiness": {
			Build: func() (*transducer.Transducer, error) { return dist.Emptiness(), nil },
			Paper: "Example 10", Input: "S/1",
		},
		"either": {
			Build: func() (*transducer.Transducer, error) { return dist.EitherNonempty(), nil },
			Paper: "Section 5", Input: "A/1, B/1",
		},
		"ping": {
			Build: func() (*transducer.Transducer, error) { return dist.PingIdentity(), nil },
			Paper: "Example 15", Input: "S/1",
		},
		"parity": {
			Build: dist.EvenCardinality,
			Paper: "Corollary 8 (≥2 nodes)", Input: "S/1",
		},
		"gossip": {
			Build: func() (*transducer.Transducer, error) { return dist.Gossip(), nil },
			Paper: "E20 scaling workload (one-hop neighbourhood)", Input: "(none)",
		},
	}
}

// Names returns the catalogue keys, sorted.
func Names() []string {
	m := Transducers()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// topologyShapes is the dispatch table of ParseTopology; the "single"
// spec (no size) is handled separately there.
var topologyShapes = map[string]func(int) *network.Network{
	"line":     network.Line,
	"ring":     network.Ring,
	"star":     network.Star,
	"complete": network.Complete,
	"random":   func(k int) *network.Network { return network.RandomConnected(k, k/2, 42) },
}

// TopologyShapes returns the recognized topology shapes, sorted.
func TopologyShapes() []string {
	out := []string{"single"}
	for shape := range topologyShapes {
		out = append(out, shape)
	}
	sort.Strings(out)
	return out
}

// partitionStrategies is the dispatch table of ParsePartition; the
// seeded "random:SEED" spec is handled separately there.
var partitionStrategies = map[string]func(*fact.Instance, *network.Network) dist.Partition{
	"roundrobin": dist.RoundRobinSplit,
	"replicate":  dist.ReplicateAll,
	"first": func(I *fact.Instance, net *network.Network) dist.Partition {
		return dist.AllAtNode(I, net.Nodes()[0])
	},
	"byrelation": calm.SplitByRelation,
}

// PartitionNames returns the recognized partition strategy specs,
// sorted.
func PartitionNames() []string {
	out := []string{"random:SEED"}
	for name := range partitionStrategies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup builds the named transducer.
func Lookup(name string) (*transducer.Transducer, error) {
	e, ok := Transducers()[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown transducer %q; available: %s", name, strings.Join(Names(), ", "))
	}
	return e.Build()
}

// ParseTopology parses "shape:size" (e.g. "line:4", "ring:3",
// "star:5", "complete:4", "random:6", "single").
func ParseTopology(spec string) (*network.Network, error) {
	if spec == "single" || spec == "single:1" {
		return network.Single(), nil
	}
	shape, sizeStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("registry: topology %q must be shape:size; available shapes: %s",
			spec, strings.Join(TopologyShapes(), ", "))
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size < 1 {
		return nil, fmt.Errorf("registry: topology %q: size %q must be a positive integer", spec, sizeStr)
	}
	mk, ok := topologyShapes[shape]
	if !ok {
		return nil, fmt.Errorf("registry: unknown topology shape %q; available shapes: %s",
			shape, strings.Join(TopologyShapes(), ", "))
	}
	return mk(size), nil
}

// ChannelScenarios returns the recognized channel-model scenario spec
// templates, sorted.
func ChannelScenarios() []string { return channel.Names() }

// DescribeChannelScenarios returns "template — description" lines for
// the channel scenarios, for CLI listings.
func DescribeChannelScenarios() []string { return channel.Describe() }

// ParseChannel resolves a channel scenario spec ("fair", "lossy:25",
// "dup:25", "partition:64", "crash:0@40,2@90"); unknown names list
// the available scenarios.
func ParseChannel(spec string) (channel.Scenario, error) { return channel.Parse(spec) }

// ParsePartition builds the named partition of I over the network:
// "roundrobin", "replicate", "first" (everything at the first node),
// "byrelation", or "random:SEED".
func ParsePartition(spec string, I *fact.Instance, net *network.Network) (dist.Partition, error) {
	if mk, ok := partitionStrategies[spec]; ok {
		return mk(I, net), nil
	}
	if strings.HasPrefix(spec, "random:") {
		seed, err := strconv.ParseInt(spec[len("random:"):], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("registry: partition %q: seed must be an integer (random:SEED)", spec)
		}
		return dist.RandomSplit(I, net, seed), nil
	}
	return nil, fmt.Errorf("registry: unknown partition %q; available: %s",
		spec, strings.Join(PartitionNames(), ", "))
}
