package registry

import (
	"testing"

	"declnet/internal/fact"
)

func TestLookupAllCatalogued(t *testing.T) {
	for _, name := range Names() {
		tr, err := Lookup(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tr == nil {
			t.Errorf("%s: nil transducer", name)
		}
	}
	if _, err := Lookup("no-such-thing"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec  string
		nodes int
		ok    bool
	}{
		{"single", 1, true},
		{"line:4", 4, true},
		{"ring:5", 5, true},
		{"star:3", 3, true},
		{"complete:4", 4, true},
		{"random:6", 6, true},
		{"line", 0, false},
		{"line:x", 0, false},
		{"blob:4", 0, false},
		{"line:0", 0, false},
	}
	for _, c := range cases {
		n, err := ParseTopology(c.spec)
		if c.ok && (err != nil || n.Size() != c.nodes) {
			t.Errorf("ParseTopology(%q) = %v, %v", c.spec, n, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseTopology(%q) should fail", c.spec)
		}
	}
}

func TestParsePartition(t *testing.T) {
	I := fact.FromFacts(fact.NewFact("S", "a"), fact.NewFact("S", "b"))
	net, _ := ParseTopology("line:2")
	for _, spec := range []string{"roundrobin", "replicate", "first", "byrelation", "random:7"} {
		p, err := ParsePartition(spec, I, net)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if !p.Covers(I) {
			t.Errorf("%s: partition does not cover the instance", spec)
		}
	}
	if _, err := ParsePartition("nope", I, net); err == nil {
		t.Error("unknown partition accepted")
	}
	if _, err := ParsePartition("random:x", I, net); err == nil {
		t.Error("bad seed accepted")
	}
}
