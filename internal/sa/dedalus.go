package sa

import (
	"fmt"

	"declnet/internal/datalog"
	"declnet/internal/dedalus"
	"declnet/internal/query"
)

// DedalusReport is the static analysis of a Dedalus program: the
// temporally-labeled predicate dependency graph and the temporal
// stratification verdict.
type DedalusReport struct {
	// Edges is the predicate dependency graph; Temporality separates
	// same-slice (NOW) edges from inductive (NEXT) and asynchronous
	// dependencies.
	Edges []Edge
	// TemporallyStratified proves that no negation lies on a cycle of
	// same-timestamp dependencies. Negation through NEXT or async
	// edges is always admissible: time strictly increases along the
	// edge, so the cycle unrolls into a well-founded chain (§8's
	// determinism condition for the deductive subset).
	TemporallyStratified Verdict
}

// AnalyzeDedalus builds the temporal dependency graph of the program
// and checks temporal stratifiability with cycle witnesses.
func AnalyzeDedalus(p *dedalus.Program) *DedalusReport {
	rep := &DedalusReport{}
	for i, r := range p.Rules {
		var temp query.Temporality
		switch r.Kind {
		case dedalus.Deductive:
			temp = query.TempNow
		case dedalus.Inductive:
			temp = query.TempNext
		default:
			temp = query.TempAsync
		}
		for _, l := range r.Body {
			if l.Kind != datalog.LitPos && l.Kind != datalog.LitNeg {
				continue
			}
			pol := query.PolPos
			if l.Kind == datalog.LitNeg {
				pol = query.PolNeg
			}
			rep.Edges = append(rep.Edges, Edge{
				From:        r.Head.Pred,
				To:          l.Atom.Pred,
				Polarity:    pol,
				Temporality: temp,
				Query:       QueryRef{Kind: r.Kind.String(), Rel: r.Head.Pred},
				Where:       fmt.Sprintf("rule %d: literal %s", i, l),
			})
		}
	}
	rep.TemporallyStratified = stratify(rep.Edges, func(e Edge) bool {
		return e.Temporality == query.TempNow
	})
	return rep
}
