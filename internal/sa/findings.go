package sa

import (
	"fmt"
	"sort"
	"strings"
)

// Finding is one linter-style message derived from a Report.
type Finding struct {
	// Code is a stable machine-readable identifier.
	Code string
	// Level is "warn" (blocks a CALM guarantee) or "info".
	Level string
	// Message is the human-readable one-liner.
	Message string
	// Witness, when present, locates the evidence.
	Witness *Witness
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s [%s] %s", f.Level, f.Code, f.Message)
	if f.Witness != nil {
		s += "\n  " + strings.ReplaceAll(f.Witness.String(), "\n", "\n  ")
	}
	return s
}

// Findings renders the report as linter findings: warnings for every
// unproved CALM guarantee (with witnesses), infos for refinements the
// seed classification missed and for provably-empty queries.
func (r *Report) Findings() []Finding {
	var fs []Finding
	add := func(code, level, msg string, w *Witness) {
		fs = append(fs, Finding{Code: code, Level: level, Message: msg, Witness: w})
	}
	if r.Monotone.OK {
		msg := "transducer is statically monotone: coordination-free by CALM (Corollary 13)"
		if !r.Class.Monotone {
			msg += " — refined verdict; the seed boolean check rejects it"
			add("monotone-refined", "info", msg, nil)
		} else {
			add("monotone", "info", msg, nil)
		}
	} else {
		for i := range r.Monotone.Witnesses {
			add("nonmonotone", "warn",
				"monotonicity not proved; semantic sweeps may coordinate", &r.Monotone.Witnesses[i])
		}
	}
	if !r.Oblivious.OK {
		for i := range r.Oblivious.Witnesses {
			add("reads-sys", "warn", "not oblivious: reads the system schema", &r.Oblivious.Witnesses[i])
		}
	} else if !r.Class.Oblivious {
		add("oblivious-refined", "info",
			"oblivious after waiving provably-empty queries; the seed check rejects it", nil)
	}
	if !r.Inflationary.OK {
		for i := range r.Inflationary.Witnesses {
			add("deletes", "info", "not inflationary: memory may shrink", &r.Inflationary.Witnesses[i])
		}
	} else if !r.Class.Inflationary {
		add("inflationary-refined", "info",
			"inflationary after proving every deletion query empty; the seed check rejects it", nil)
	}
	if !r.Stratified.OK {
		for i := range r.Stratified.Witnesses {
			add("strat-cycle", "warn",
				"negation (or unknown-polarity read) on a dependency cycle", &r.Stratified.Witnesses[i])
		}
	}
	for _, q := range r.EmptyQueries {
		q := q
		add("empty-query", "info",
			fmt.Sprintf("query %s provably never produces a tuple", q), nil)
	}
	rels := make([]string, 0, len(r.RelMonotone))
	for rel := range r.RelMonotone {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		v := r.RelMonotone[rel]
		if !v.OK && len(v.Witnesses) > 0 {
			add("rel-nonmonotone", "info",
				"relation "+rel+" is not a provably monotone function of the input", &v.Witnesses[0])
		}
	}
	return fs
}

// Warnings counts the warn-level findings.
func (r *Report) Warnings() int {
	n := 0
	for _, f := range r.Findings() {
		if f.Level == "warn" {
			n++
		}
	}
	return n
}

// String renders the full report for CLI output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "static analysis of %s\n", r.Name)
	fmt.Fprintf(&b, "  class (seed):    %s\n", r.Class)
	fmt.Fprintf(&b, "  class (refined): %s\n", r.Refined)
	fmt.Fprintf(&b, "  populated: %s\n", strings.Join(r.Populated, " "))
	fmt.Fprintf(&b, "  dependency graph (%d edges):\n", len(r.Edges))
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	for _, f := range r.Findings() {
		fmt.Fprintf(&b, "  %s\n", strings.ReplaceAll(f.String(), "\n", "\n  "))
	}
	return b.String()
}
