package sa

import (
	"fmt"

	"declnet/internal/query"
)

// stratify reports whether the polarized relation graph is
// stratifiable: no negative (or guard-polarity, conservatively) edge
// may lie on a cycle. restrict selects the edges participating in the
// graph (nil keeps all); the dedalus temporal analysis restricts to
// same-timestamp edges, since negation through NEXT/async dependencies
// is ordered by time and never cyclic within a slice.
//
// Each violation produces a witness whose reason chain spells out one
// offending cycle edge by edge.
func stratify(edges []Edge, restrict func(Edge) bool) Verdict {
	var used []Edge
	for _, e := range edges {
		if restrict == nil || restrict(e) {
			used = append(used, e)
		}
	}
	comp := sccs(used)
	v := Verdict{OK: true}
	for _, e := range used {
		if e.Polarity == query.PolPos {
			continue
		}
		cf, okF := comp[e.From]
		ct, okT := comp[e.To]
		if !okF || !okT || cf != ct {
			continue
		}
		cycle := cyclePath(used, comp, e)
		v.OK = false
		v.Witnesses = append(v.Witnesses, Witness{
			Relation: e.To,
			Query:    e.Query,
			Where:    e.Where,
			Reasons:  cycle,
		})
	}
	return v
}

// sccs returns the strongly-connected-component index of every node of
// the edge set (iterative Tarjan).
func sccs(edges []Edge) map[string]int {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		nodes[e.From] = true
		nodes[e.To] = true
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	type frame struct {
		node string
		i    int
	}
	for n := range nodes {
		if _, seen := index[n]; seen {
			continue
		}
		frames := []frame{{n, 0}}
		index[n], low[n] = next, next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(adj[f.node]) {
				w := adj[f.node][f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			if low[f.node] == index[f.node] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == f.node {
						break
					}
				}
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
		}
	}
	return comp
}

// cyclePath renders a cycle through the offending edge e: e itself,
// then a shortest dependency path from e.To back to e.From inside
// their common SCC.
func cyclePath(edges []Edge, comp map[string]int, e Edge) []string {
	scc := comp[e.From]
	// BFS from e.To to e.From over edges inside the SCC.
	type step struct {
		node string
		via  *Edge
		prev int
	}
	steps := []step{{node: e.To, prev: -1}}
	seen := map[string]bool{e.To: true}
	goal := -1
	for i := 0; i < len(steps) && goal < 0; i++ {
		if steps[i].node == e.From {
			goal = i
			break
		}
		for j := range edges {
			w := edges[j]
			if w.From != steps[i].node || comp[w.To] != scc || seen[w.To] {
				continue
			}
			seen[w.To] = true
			steps = append(steps, step{node: w.To, via: &edges[j], prev: i})
			if w.To == e.From {
				goal = len(steps) - 1
			}
		}
	}
	chain := []string{fmt.Sprintf("cycle: %s depends on %s with polarity %s (%s: %s)",
		e.From, e.To, e.Polarity, e.Query, e.Where)}
	if goal < 0 {
		return append(chain, "…and "+e.To+" reaches "+e.From+" within the same component")
	}
	var back []string
	for i := goal; i >= 0 && steps[i].via != nil; i = steps[i].prev {
		w := steps[i].via
		back = append(back, fmt.Sprintf("%s depends on %s with polarity %s (%s: %s)",
			w.From, w.To, w.Polarity, w.Query, w.Where))
	}
	for i := len(back) - 1; i >= 0; i-- {
		chain = append(chain, back[i])
	}
	return chain
}
