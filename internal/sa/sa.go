// Package sa is the static CALM analyzer: a multi-pass analysis over
// the query ASTs and the compiled plan IR of a transducer that
// replaces the one-bit SyntacticallyMonotone gate with per-relation
// polarity and dependency analysis, and refines the syntactic §4
// classification (oblivious / inflationary / monotone) with
// provably-empty-query and per-relation evidence. Every verdict
// carries a structured witness — relation, query, position, reason
// chain — so a negative answer names the exact position that blocked
// the proof.
//
// # Verdict lattice
//
// Each Verdict is a PROOF claim: OK=true means "statically proved",
// OK=false means "not proved" (never "proved false") and the witnesses
// name the blocking positions. The refinements are sound widenings of
// the seed checks — whatever calm.Classify accepted is still accepted,
// and the soundness harness (soundness_test.go in this package)
// cross-validates every positive monotonicity verdict against the
// semantic sweeps CheckMonotone / CheckChannelRobustness over the
// whole construction zoo and both fuzz corpora.
//
// # Passes
//
//  1. Dependency graph: every transducer query contributes polarized
//     edges target → read (query.DepsOf, backed per language by the
//     compiled plan IR via plan.SpecDeps, the fo/datalog polarity
//     walks, and the while-program dataflow). Deletion queries invert
//     the polarity of their reads (growing a read can shrink memory).
//  2. Populatable-relation fixpoint: starting from the input and
//     system schema, a message or memory relation is populatable only
//     if its producing query may produce output given the relations
//     already populatable (query.MayProduce). Everything outside the
//     fixpoint provably never holds a fact.
//  3. Provably-empty queries: a query whose every disjunct requires an
//     unpopulatable relation can never produce a tuple; such queries
//     are waived by the refined verdicts (they behave as the empty
//     query in every reachable configuration).
//  4. Refined classification: monotone / oblivious / inflationary /
//     uses-Id / uses-All recomputed with provably-empty queries waived
//     and the widened per-language monotonicity evidence.
//  5. Per-relation monotonicity: the greatest set of relations whose
//     (cumulative) contents are monotone functions of the input —
//     input and system relations trivially; message relations whose
//     send query is monotone over monotone relations; deletion-free
//     memory relations whose insert query is likewise.
//  6. Stratification: a negative or guard-polarity dependency edge
//     inside a strongly connected component of the relation graph is
//     reported with an explicit cycle witness. AnalyzeDedalus runs the
//     temporal variant: only same-timestamp (NOW) negative cycles
//     violate temporal stratifiability; negation through NEXT/async
//     edges is ordered by time.
package sa

import (
	"fmt"
	"sort"
	"strings"

	"declnet/internal/calm"
	"declnet/internal/query"
	"declnet/internal/transducer"
)

// QueryRef names one query of a transducer.
type QueryRef struct {
	// Kind is "send", "insert", "delete" or "output".
	Kind string
	// Rel is the target relation; empty for the output query.
	Rel string
}

func (r QueryRef) String() string {
	if r.Kind == "output" {
		return "output"
	}
	return r.Kind + " " + r.Rel
}

// outRel is the pseudo-relation written by the output query.
const outRel = "⟨out⟩"

// Edge is one polarized dependency in the transducer's relation graph:
// the target relation of Query depends on a read of To.
type Edge struct {
	// From is the relation the query writes (outRel for output).
	From string
	// To is the relation read.
	To string
	// Polarity is the read's polarity as seen by From: deletion
	// queries invert the polarity of their reads.
	Polarity query.Polarity
	// Temporality is TempNow for transducer queries (one local step);
	// dedalus analysis produces TempNext/TempAsync edges.
	Temporality query.Temporality
	// Query is the contributing query.
	Query QueryRef
	// Where locates the read inside the query.
	Where string
}

func (e Edge) String() string {
	return fmt.Sprintf("%s %s→ %s [%s: %s]", e.From, e.Polarity, e.To, e.Query, e.Where)
}

// Witness locates the evidence of a verdict: the relation and query
// concerned, the position inside the query, and the reason chain.
type Witness struct {
	Relation string
	Query    QueryRef
	Where    string
	Reasons  []string
}

func (w Witness) String() string {
	var b strings.Builder
	if w.Relation != "" {
		fmt.Fprintf(&b, "%s: ", w.Relation)
	}
	if w.Query.Kind != "" {
		fmt.Fprintf(&b, "[%s] ", w.Query)
	}
	b.WriteString(w.Where)
	for _, r := range w.Reasons {
		b.WriteString("\n    - " + r)
	}
	return b.String()
}

// Verdict is a proof claim with witnesses: OK means statically proved;
// not-OK means not proved, with the blocking positions as witnesses
// (for stratification, the cycle itself).
type Verdict struct {
	OK        bool
	Witnesses []Witness
}

// Report is the full output of Analyze.
type Report struct {
	Name string
	// Edges is the polarized relation dependency graph.
	Edges []Edge
	// Populated lists the relations that may ever hold a fact
	// (pass 2), sorted.
	Populated []string
	// EmptyQueries lists the provably-empty queries (pass 3).
	EmptyQueries []QueryRef
	// RelMonotone maps each schema relation to its per-relation
	// monotonicity verdict (pass 5).
	RelMonotone map[string]Verdict
	// Monotone, Oblivious, Inflationary are the refined §4 class
	// verdicts (pass 4).
	Monotone     Verdict
	Oblivious    Verdict
	Inflationary Verdict
	// Stratified is the stratification verdict over the relation
	// graph (pass 6); its witnesses carry cycle reason chains.
	Stratified Verdict
	// Class is the seed syntactic classification, Refined the widened
	// one; Refined never clears a bit that Class sets on Monotone /
	// Oblivious / Inflationary, and never sets UsesId / UsesAll that
	// Class clears.
	Class   calm.Class
	Refined calm.Class
}

// queryRefs enumerates the transducer's queries in deterministic
// order with their polarity inversion (deletions invert).
func queryRefs(tr *transducer.Transducer) []struct {
	Ref    QueryRef
	Q      query.Query
	Invert bool
	Target string
} {
	var out []struct {
		Ref    QueryRef
		Q      query.Query
		Invert bool
		Target string
	}
	add := func(kind, rel string, q query.Query, invert bool, target string) {
		if q == nil {
			return
		}
		out = append(out, struct {
			Ref    QueryRef
			Q      query.Query
			Invert bool
			Target string
		}{QueryRef{kind, rel}, q, invert, target})
	}
	for _, rel := range sortedRels(tr.Schema.Msg) {
		add("send", rel, tr.Snd[rel], false, rel)
	}
	for _, rel := range sortedRels(tr.Schema.Mem) {
		add("insert", rel, tr.Ins[rel], false, rel)
		add("delete", rel, tr.Del[rel], true, rel)
	}
	add("output", "", tr.Out, false, outRel)
	return out
}

func sortedRels(s map[string]int) []string {
	out := make([]string, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Analyze runs every pass and returns the report.
func Analyze(tr *transducer.Transducer) *Report {
	rep := &Report{Name: tr.Name, Class: calm.Classify(tr)}
	qs := queryRefs(tr)

	// Pass 1: dependency graph.
	for _, e := range qs {
		for _, d := range query.DepsOf(e.Q) {
			pol := d.Polarity
			if e.Invert {
				pol = invert(pol)
			}
			rep.Edges = append(rep.Edges, Edge{
				From:        e.Target,
				To:          d.Rel,
				Polarity:    pol,
				Temporality: d.Temporality,
				Query:       e.Ref,
				Where:       d.Where,
			})
		}
	}
	// Memory persists across steps: every memory relation depends
	// positively on its own previous value (the conflict-resolution
	// update keeps untouched tuples).
	for _, rel := range sortedRels(tr.Schema.Mem) {
		rep.Edges = append(rep.Edges, Edge{
			From: rel, To: rel, Polarity: query.PolPos,
			Query: QueryRef{"insert", rel},
			Where: "memory persistence (untouched tuples survive the update formula)",
		})
	}

	// Pass 2: populatable-relation fixpoint.
	populated := map[string]bool{transducer.SysId: true, transducer.SysAll: true}
	for rel := range tr.Schema.In {
		populated[rel] = true
	}
	populatedFn := func(rel string) bool { return populated[rel] }
	for changed := true; changed; {
		changed = false
		for _, rel := range sortedRels(tr.Schema.Msg) {
			if !populated[rel] && query.MayProduce(tr.Snd[rel], populatedFn) {
				populated[rel] = true
				changed = true
			}
		}
		for _, rel := range sortedRels(tr.Schema.Mem) {
			if !populated[rel] && query.MayProduce(tr.Ins[rel], populatedFn) {
				populated[rel] = true
				changed = true
			}
		}
	}
	for rel := range populated {
		rep.Populated = append(rep.Populated, rel)
	}
	sort.Strings(rep.Populated)

	// Pass 3: provably-empty queries.
	empty := map[QueryRef]bool{}
	for _, e := range qs {
		if !query.MayProduce(e.Q, populatedFn) {
			empty[e.Ref] = true
			rep.EmptyQueries = append(rep.EmptyQueries, e.Ref)
		}
	}

	// Pass 4: refined classification.
	rep.Monotone = Verdict{OK: true}
	rep.Oblivious = Verdict{OK: true}
	rep.Inflationary = Verdict{OK: true}
	usesId, usesAll := false, false
	for _, e := range qs {
		if empty[e.Ref] {
			continue // behaves as the empty query everywhere reachable
		}
		ev := query.ExplainMonotone(e.Q)
		if !ev.Monotone {
			rep.Monotone.OK = false
			rep.Monotone.Witnesses = append(rep.Monotone.Witnesses, Witness{
				Relation: e.Target, Query: e.Ref,
				Where:   "monotonicity not proved",
				Reasons: ev.Blockers,
			})
		}
		for _, d := range query.DepsOf(e.Q) {
			if d.Rel == transducer.SysId {
				usesId = true
			}
			if d.Rel == transducer.SysAll {
				usesAll = true
			}
			if d.Rel == transducer.SysId || d.Rel == transducer.SysAll {
				rep.Oblivious.OK = false
				rep.Oblivious.Witnesses = append(rep.Oblivious.Witnesses, Witness{
					Relation: d.Rel, Query: e.Ref,
					Where:   d.Where,
					Reasons: []string{"reads the system relation " + d.Rel},
				})
			}
		}
		if e.Ref.Kind == "delete" {
			rep.Inflationary.OK = false
			rep.Inflationary.Witnesses = append(rep.Inflationary.Witnesses, Witness{
				Relation: e.Target, Query: e.Ref,
				Where:   "deletion query not provably empty",
				Reasons: []string{"memory relation " + e.Target + " may shrink"},
			})
		}
	}
	rep.Refined = calm.Class{
		Oblivious:    rep.Oblivious.OK,
		UsesId:       usesId,
		UsesAll:      usesAll,
		Inflationary: rep.Inflationary.OK,
		Monotone:     rep.Monotone.OK,
	}

	// Pass 5: per-relation monotonicity (greatest fixpoint).
	rep.RelMonotone = relMonotone(tr, qs, empty)

	// Pass 6: stratification over the relation graph.
	rep.Stratified = stratify(rep.Edges, nil)

	return rep
}

func invert(p query.Polarity) query.Polarity {
	switch p {
	case query.PolPos:
		return query.PolNeg
	case query.PolNeg:
		return query.PolPos
	}
	return query.PolGuard
}

// relMonotone computes the greatest set of relations whose cumulative
// contents are provably monotone functions of the input: input and
// system relations trivially; a message relation when its send query
// is monotone over monotone relations (the set of ever-sent messages
// then only grows as the input grows); a memory relation additionally
// requires its deletion query provably empty (deletion-free memory
// accumulates). Relations are demoted until the set is consistent.
func relMonotone(tr *transducer.Transducer, qs []struct {
	Ref    QueryRef
	Q      query.Query
	Invert bool
	Target string
}, empty map[QueryRef]bool) map[string]Verdict {
	mono := map[string]Verdict{
		transducer.SysId:  {OK: true},
		transducer.SysAll: {OK: true},
	}
	for rel := range tr.Schema.In {
		mono[rel] = Verdict{OK: true}
	}
	for _, rel := range sortedRels(tr.Schema.Msg) {
		mono[rel] = Verdict{OK: true}
	}
	for _, rel := range sortedRels(tr.Schema.Mem) {
		mono[rel] = Verdict{OK: true}
	}
	demote := func(rel string, w Witness) bool {
		if v, ok := mono[rel]; ok && v.OK {
			mono[rel] = Verdict{Witnesses: []Witness{w}}
			return true
		}
		return false
	}
	checkProducer := func(ref QueryRef, q query.Query, target string) bool {
		if q == nil || empty[ref] {
			return false // never produces: contributes nothing
		}
		if ev := query.ExplainMonotone(q); !ev.Monotone {
			return demote(target, Witness{
				Relation: target, Query: ref,
				Where:   "producing query not provably monotone",
				Reasons: ev.Blockers,
			})
		}
		for _, d := range query.DepsOf(q) {
			if v, ok := mono[d.Rel]; ok && !v.OK {
				return demote(target, Witness{
					Relation: target, Query: ref, Where: d.Where,
					Reasons: append([]string{
						"reads " + d.Rel + ", which is not provably monotone:"},
						witnessReasons(v.Witnesses)...),
				})
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, e := range qs {
			switch e.Ref.Kind {
			case "send":
				if checkProducer(e.Ref, e.Q, e.Target) {
					changed = true
				}
			case "insert":
				if checkProducer(e.Ref, e.Q, e.Target) {
					changed = true
				}
			case "delete":
				if !empty[e.Ref] {
					if demote(e.Target, Witness{
						Relation: e.Target, Query: e.Ref,
						Where:   "deletion query not provably empty",
						Reasons: []string{"memory relation " + e.Target + " may shrink over time"},
					}) {
						changed = true
					}
				}
			}
		}
	}
	return mono
}

func witnessReasons(ws []Witness) []string {
	var out []string
	for _, w := range ws {
		out = append(out, w.Where)
		out = append(out, w.Reasons...)
	}
	return out
}
