package sa

import (
	"strings"
	"testing"

	"declnet/internal/datalog"
	"declnet/internal/dedalus"
	"declnet/internal/fact"
	"declnet/internal/fo"
	"declnet/internal/query"
	"declnet/internal/transducer"
	"declnet/internal/while"
)

// TestRefinedWaivesProvablyEmptyDelete: a deletion query that is
// non-monotone but reads a never-inserted memory relation is provably
// empty; the refined class restores both inflationary and monotone
// while the seed classification rejects both.
func TestRefinedWaivesProvablyEmptyDelete(t *testing.T) {
	schema := transducer.Schema{
		In:       fact.Schema{"A": 1},
		Msg:      fact.Schema{"M": 1},
		Mem:      fact.Schema{"P": 1, "Ghost": 1},
		OutArity: 1,
	}
	snd := map[string]query.Query{
		"M": fo.MustQuery("sndM", []string{"x"}, fo.AtomF("A", "x")),
	}
	ins := map[string]query.Query{
		"P": fo.MustQuery("insP", []string{"x"}, fo.AtomF("M", "x")),
	}
	del := map[string]query.Query{
		"P": fo.MustQuery("delP", []string{"x"},
			fo.AndF(fo.AtomF("Ghost", "x"), fo.NotF(fo.AtomF("A", "x")))),
	}
	out := fo.MustQuery("out", []string{"x"}, fo.AtomF("P", "x"))
	tr := transducer.MustNew("waiver", schema, snd, ins, del, out)

	rep := Analyze(tr)
	if rep.Class.Monotone || rep.Class.Inflationary {
		t.Fatalf("seed class unexpectedly accepts: %s", rep.Class)
	}
	if !rep.Refined.Monotone || !rep.Refined.Inflationary {
		t.Fatalf("refined class should waive the provably-empty delete: %s", rep.Refined)
	}
	foundDel := false
	for _, q := range rep.EmptyQueries {
		if q.Kind == "delete" && q.Rel == "P" {
			foundDel = true
		}
	}
	if !foundDel {
		t.Fatalf("delete P should be provably empty; got %v", rep.EmptyQueries)
	}
	for _, rel := range rep.Populated {
		if rel == "Ghost" {
			t.Fatal("Ghost has no insert query and must not be populatable")
		}
	}
	if !rep.Stratified.OK {
		t.Fatalf("no live negation cycle expected: %v", rep.Stratified.Witnesses)
	}
}

// TestRefinedNeverShrinks: over the whole zoo of schema shapes the
// refined class must keep every bit the seed class grants (widening,
// never shrinking).
func TestRefinedNeverShrinks(t *testing.T) {
	schema := transducer.Schema{In: fact.Schema{"S": 2}, OutArity: 2}
	out := fo.MustQuery("out", []string{"x", "y"}, fo.AtomF("S", "x", "y"))
	tr := transducer.MustNew("id2", schema, nil, nil, nil, out)
	rep := Analyze(tr)
	if rep.Class.Monotone && !rep.Refined.Monotone {
		t.Fatal("refinement shrank monotone")
	}
	if rep.Class.Oblivious && !rep.Refined.Oblivious {
		t.Fatal("refinement shrank oblivious")
	}
	if rep.Class.Inflationary && !rep.Refined.Inflationary {
		t.Fatal("refinement shrank inflationary")
	}
}

// TestStratificationCycleWitness: inserting ¬T into T is a negation on
// a dependency cycle (via memory persistence); the verdict must carry
// a cycle witness naming both edges.
func TestStratificationCycleWitness(t *testing.T) {
	schema := transducer.Schema{
		In:       fact.Schema{"A": 1},
		Mem:      fact.Schema{"T": 1},
		OutArity: 1,
	}
	ins := map[string]query.Query{
		"T": fo.MustQuery("insT", []string{"x"},
			fo.AndF(fo.AtomF("A", "x"), fo.NotF(fo.AtomF("T", "x")))),
	}
	out := fo.MustQuery("out", []string{"x"}, fo.AtomF("T", "x"))
	tr := transducer.MustNew("negcycle", schema, nil, ins, nil, out)

	rep := Analyze(tr)
	if rep.Stratified.OK {
		t.Fatal("negation through memory must break stratification")
	}
	w := rep.Stratified.Witnesses[0]
	if w.Relation != "T" {
		t.Errorf("witness relation = %q, want T", w.Relation)
	}
	chain := strings.Join(w.Reasons, "\n")
	if !strings.Contains(chain, "cycle") || !strings.Contains(chain, "polarity -") {
		t.Errorf("cycle witness lacks the negative edge:\n%s", chain)
	}
}

// TestDeletionInvertsPolarity: a delete query reading A positively
// makes the memory relation depend NEGATIVELY on A.
func TestDeletionInvertsPolarity(t *testing.T) {
	schema := transducer.Schema{
		In:       fact.Schema{"A": 1, "B": 1},
		Mem:      fact.Schema{"P": 1},
		OutArity: 1,
	}
	ins := map[string]query.Query{
		"P": fo.MustQuery("insP", []string{"x"}, fo.AtomF("B", "x")),
	}
	del := map[string]query.Query{
		"P": fo.MustQuery("delP", []string{"x"}, fo.AtomF("A", "x")),
	}
	out := fo.MustQuery("out", []string{"x"}, fo.AtomF("P", "x"))
	tr := transducer.MustNew("delpol", schema, nil, ins, del, out)

	rep := Analyze(tr)
	found := false
	for _, e := range rep.Edges {
		if e.From == "P" && e.To == "A" && e.Query.Kind == "delete" {
			found = true
			if e.Polarity != query.PolNeg {
				t.Errorf("delete edge polarity = %s, want -", e.Polarity)
			}
		}
	}
	if !found {
		t.Fatalf("missing delete edge P→A in %v", rep.Edges)
	}
	if v := rep.RelMonotone["P"]; v.OK {
		t.Error("P with a live delete query must not be per-relation monotone")
	}
}

// TestWhileIdentityAccepted: the assignment-free while-program (the
// identity query) is statically monotone and the transducer carrying
// it classifies monotone — the seed check before the analyzer
// classified EVERY while query non-monotone.
func TestWhileIdentityAccepted(t *testing.T) {
	p := while.MustNew("S", 1)
	q := while.Query{P: p}
	if !q.SyntacticallyMonotone() {
		t.Fatal("assignment-free while query must be monotone")
	}
	schema := transducer.Schema{In: fact.Schema{"S": 1}, OutArity: 1}
	tr := transducer.MustNew("whileid", schema, nil, nil, nil, q)
	rep := Analyze(tr)
	if !rep.Monotone.OK {
		t.Fatalf("while identity should be statically monotone: %+v", rep.Monotone.Witnesses)
	}
}

// TestDatalogAbsorptionAccepted: negation only on a never-rederived
// input relation with an absorbing union rule is effectively monotone.
func TestDatalogAbsorptionAccepted(t *testing.T) {
	prog := datalog.MustProgram(
		datalog.Rule{Head: datalog.Atom{Pred: "ans", Terms: []datalog.Term{datalog.V("X")}},
			Body: []datalog.Literal{datalog.Pos("a", datalog.V("X"))}},
		datalog.Rule{Head: datalog.Atom{Pred: "ans", Terms: []datalog.Term{datalog.V("X")}},
			Body: []datalog.Literal{datalog.Pos("b", datalog.V("X")), datalog.Neg("a", datalog.V("X"))}},
	)
	q := datalog.MustQuery(prog, "ans")
	if !q.SyntacticallyMonotone() {
		t.Fatal("absorbed negation must be accepted as monotone")
	}
	schema := transducer.Schema{In: fact.Schema{"a": 1, "b": 1}, OutArity: 1}
	tr := transducer.MustNew("absorb", schema, nil, nil, nil, q)
	rep := Analyze(tr)
	if !rep.Monotone.OK {
		t.Fatalf("absorption transducer should be statically monotone: %+v", rep.Monotone.Witnesses)
	}
	if !rep.Stratified.OK {
		t.Fatalf("absorbed negation must not surface as a stratification cycle: %+v", rep.Stratified.Witnesses)
	}
}

// TestDedalusTemporalStratification: a same-slice negation cycle is a
// violation with a witness; the same cycle through an inductive edge
// is temporally stratified (time orders the recursion).
func TestDedalusTemporalStratification(t *testing.T) {
	// Raw Program structs: dedalus.New would reject the deductive
	// violation outright — the analyzer must produce the witness the
	// constructor's error hides.
	bad := &dedalus.Program{Rules: []dedalus.Rule{
		{Kind: dedalus.Deductive, Head: dedalus.Atom("p", "X"),
			Body: []datalog.Literal{datalog.Pos("q", datalog.V("X")), datalog.Neg("p", datalog.V("X"))}},
	}}
	rep := AnalyzeDedalus(bad)
	if rep.TemporallyStratified.OK {
		t.Fatal("deductive negation self-cycle must violate temporal stratification")
	}
	if len(rep.TemporallyStratified.Witnesses) == 0 ||
		len(rep.TemporallyStratified.Witnesses[0].Reasons) == 0 {
		t.Fatal("violation must carry a cycle witness")
	}

	good := &dedalus.Program{Rules: []dedalus.Rule{
		{Kind: dedalus.Inductive, Head: dedalus.Atom("p", "X"),
			Body: []datalog.Literal{datalog.Pos("q", datalog.V("X")), datalog.Neg("p", datalog.V("X"))}},
	}}
	rep = AnalyzeDedalus(good)
	if !rep.TemporallyStratified.OK {
		t.Fatalf("negation through NEXT is time-ordered and admissible: %+v",
			rep.TemporallyStratified.Witnesses)
	}
	// Temporality labels must survive into the edges.
	for _, e := range rep.Edges {
		if e.Temporality != query.TempNext {
			t.Errorf("edge %s: temporality = %s, want next", e, e.Temporality)
		}
	}
}

// TestFindingsRender: findings and report rendering stay well-formed.
func TestFindingsRender(t *testing.T) {
	schema := transducer.Schema{In: fact.Schema{"S": 1}, OutArity: 1}
	out := fo.MustQuery("out", []string{"x"}, fo.AtomF("S", "x"))
	tr := transducer.MustNew("render", schema, nil, nil, nil, out)
	rep := Analyze(tr)
	if rep.Warnings() != 0 {
		t.Fatalf("clean transducer has warnings: %v", rep.Findings())
	}
	s := rep.String()
	for _, want := range []string{"class (seed)", "class (refined)", "dependency graph"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering lacks %q:\n%s", want, s)
		}
	}
}
