package sa

// The machine-checked soundness contract of the static analyzer: a
// program the analyzer PROVES monotone must never be refuted by the
// semantic sweeps. The harness crosses the static verdict against
//
//   - calm.CheckMonotone on a growing chain of sub-instances, and
//   - calm.CheckChannelRobustness under lossy/duplicating channels,
//
// over (a) every construction of the paper's transducer zoo and
// (b) every parseable query of the committed fo and datalog fuzz
// corpora, wrapped into single-query transducers. The reverse
// direction is NOT required (the analyzer is incomplete by design);
// the completeness gap — semantically unrefuted but statically
// unproved programs — is logged as a tracked count instead.
//
// The harness also pins the two headline widenings end to end: an
// assignment-free while query and a datalog program with absorbed
// negation, both rejected by the pre-analyzer boolean check, are now
// statically accepted AND actually stream through
// dist.MonotoneStreaming to the right answer.

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"declnet/internal/calm"
	"declnet/internal/datalog"
	"declnet/internal/dist"
	"declnet/internal/fact"
	"declnet/internal/fo"
	"declnet/internal/network"
	"declnet/internal/query"
	"declnet/internal/transducer"
	"declnet/internal/while"
)

func ff(rel string, args ...fact.Value) fact.Fact { return fact.NewFact(rel, args...) }

// soundnessZoo mirrors the dist differential zoo: every construction
// of the paper with a sample input.
func soundnessZoo(t testing.TB) []struct {
	name string
	tr   *transducer.Transducer
	I    *fact.Instance
} {
	t.Helper()
	must := func(tr *transducer.Transducer, err error) *transducer.Transducer {
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	edges := fact.FromFacts(ff("S", "a", "b"), ff("S", "b", "c"), ff("S", "c", "d"))
	eqPairs := fact.FromFacts(ff("S", "a", "a"), ff("S", "a", "b"), ff("S", "c", "c"))
	set := fact.FromFacts(ff("S", "x1"), ff("S", "x2"), ff("S", "x3"))
	ab := fact.FromFacts(ff("A", "a1"), ff("A", "a2"), ff("B", "b1"))

	tcq := datalog.MustQuery(datalog.MustParse(`
		tc(X, Y) :- S(X, Y).
		tc(X, Z) :- S(X, Y), tc(Y, Z).
	`), "tc")
	emptiness := query.NewFunc("emptiness", 0, []string{"S"}, false,
		func(I *fact.Instance) (*fact.Relation, error) {
			out := fact.NewRelation(0)
			if I.RelationOr("S", 1).Empty() {
				out.Add(fact.Tuple{})
			}
			return out, nil
		})
	floodOut := fo.MustQuery("pairs", []string{"x", "y"}, fo.AtomF("S", "x", "y"))
	whileProg := while.MustParse(`
T(x, y) := E(x, y);
D(x, y) := E(x, y);
while exists x, y D(x, y) {
    N(x, y) := T(x, y) | exists z (T(x, z) & T(z, y));
    D(x, y) := N(x, y) & !T(x, y);
    T(x, y) := N(x, y);
}
output T/2
`)
	whileIn := fact.FromFacts(ff("E", "a", "b"), ff("E", "b", "c"))

	return []struct {
		name string
		tr   *transducer.Transducer
		I    *fact.Instance
	}{
		{"transitiveClosure", dist.TransitiveClosure(), edges},
		{"equalitySelection", dist.EqualitySelection(), eqPairs},
		{"firstElement", dist.FirstElement(), set},
		{"relayOnly", dist.RelayOnly(), set},
		{"flood", must(dist.Flood(fact.Schema{"S": 2}, floodOut, 2)), edges},
		{"multicast", must(dist.Multicast(fact.Schema{"S": 2}, floodOut, 2)), edges},
		{"collectThenCompute", must(dist.CollectThenCompute(fact.Schema{"S": 1}, emptiness)), set},
		{"monotoneStreaming", must(dist.MonotoneStreaming(fact.Schema{"S": 2}, tcq)), edges},
		{"datalogStreaming", must(dist.DatalogStreaming(datalog.MustParse(`
			tc(X, Y) :- S(X, Y).
			tc(X, Z) :- S(X, Y), tc(Y, Z).
		`), "tc")), edges},
		{"whileTransducer", must(dist.WhileTransducer(whileProg, fact.Schema{"E": 2})), whileIn},
		{"emptiness", dist.Emptiness(), set},
		{"eitherNonempty", dist.EitherNonempty(), ab},
		{"pingIdentity", dist.PingIdentity(), set},
		{"evenCardinality", must(dist.EvenCardinality()), set},
	}
}

// TestStaticSoundnessZoo: over all 14 constructions, a static
// monotonicity proof implies no violation on the growing chain and
// robustness under adversarial channels. The completeness gap is
// logged, never asserted.
func TestStaticSoundnessZoo(t *testing.T) {
	proved, gap := 0, 0
	for _, e := range soundnessZoo(t) {
		rep := Analyze(e.tr)
		viol, err := calm.CheckMonotone(e.tr, calm.GrowingChain(e.I))
		if err != nil {
			t.Fatalf("%s: semantic sweep: %v", e.name, err)
		}
		if rep.Monotone.OK {
			proved++
			if viol != nil {
				t.Errorf("%s: SOUNDNESS VIOLATION: statically proved monotone but Q(%v)=%v ⊄ Q(%v)=%v",
					e.name, viol.I, viol.QI, viol.J, viol.QJ)
			}
			rob, err := calm.CheckChannelRobustness(network.Line(2), e.tr, e.I,
				[]string{"lossy:25", "dup:25"}, calm.RobustOptions{Seeds: 1})
			if err != nil {
				t.Fatalf("%s: robustness sweep: %v", e.name, err)
			}
			if !rob.Robust() {
				t.Errorf("%s: SOUNDNESS VIOLATION: statically proved monotone but divergent under %v",
					e.name, rob.Divergent())
			}
		} else if viol == nil {
			gap++
		}
	}
	if proved < 3 {
		t.Errorf("only %d zoo constructions statically proved monotone — the sweep is near-vacuous", proved)
	}
	t.Logf("zoo: %d statically proved, completeness gap %d (semantically unrefuted, statically unproved)", proved, gap)
}

// corpusInputs decodes the `go test fuzz v1` corpus files of another
// package's fuzz target into their string inputs.
func corpusInputs(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no committed corpus under %s", dir)
	}
	var out []string
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				t.Fatalf("%s: undecodable corpus line %q: %v", f, line, err)
			}
			out = append(out, s)
		}
	}
	return out
}

// foSig collects relation arities (first occurrence wins) and
// constants of an fo formula, for sample-instance generation.
func foSig(f fo.Formula, arities map[string]int, consts map[fact.Value]bool) {
	switch g := f.(type) {
	case fo.Atom:
		if _, ok := arities[g.Rel]; !ok {
			arities[g.Rel] = len(g.Terms)
		}
		for _, tm := range g.Terms {
			if c, ok := tm.(fo.Const); ok {
				consts[fact.Value(c)] = true
			}
		}
	case fo.Eq:
		for _, tm := range []fo.Term{g.L, g.R} {
			if c, ok := tm.(fo.Const); ok {
				consts[fact.Value(c)] = true
			}
		}
	case fo.Not:
		foSig(g.F, arities, consts)
	case fo.And:
		for _, sub := range g.Fs {
			foSig(sub, arities, consts)
		}
	case fo.Or:
		for _, sub := range g.Fs {
			foSig(sub, arities, consts)
		}
	case fo.Exists:
		foSig(g.F, arities, consts)
	case fo.Forall:
		foSig(g.F, arities, consts)
	}
}

// sampleInstance builds a small deterministic instance over the given
// relation arities, mixing formula constants into a fixed value pool.
func sampleInstance(arities map[string]int, consts map[fact.Value]bool) *fact.Instance {
	pool := []fact.Value{"v0", "v1", "v2"}
	for c := range consts {
		pool = append(pool, c)
	}
	I := fact.NewInstance()
	for rel, ar := range arities {
		for i := 0; i < 3; i++ {
			tup := make(fact.Tuple, ar)
			for j := range tup {
				tup[j] = pool[(i+j)%len(pool)]
			}
			I.AddFact(fact.NewFact(rel, tup...))
		}
	}
	return I
}

// checkQuerySoundness wraps q into a single-query transducer over the
// given input arities and crosses the static verdict against the
// semantic chain. Returns (provedStatically, semanticallyUnrefuted).
func checkQuerySoundness(t *testing.T, name string, q query.Query, arities map[string]int, consts map[fact.Value]bool) (bool, bool) {
	t.Helper()
	in := fact.Schema{}
	for rel, ar := range arities {
		in[rel] = ar
	}
	tr, err := transducer.New(name, transducer.Schema{In: in, OutArity: q.Arity()}, nil, nil, nil, q)
	if err != nil {
		return false, false // reserved relation names etc. — out of scope
	}
	rep := Analyze(tr)
	viol, err := calm.CheckMonotone(tr, calm.GrowingChain(sampleInstance(arities, consts)))
	if err != nil {
		return false, false // query evaluation rejected the sample — out of scope
	}
	if rep.Monotone.OK && viol != nil {
		t.Errorf("%s: SOUNDNESS VIOLATION: statically monotone but Q(%v)=%v ⊄ Q(%v)=%v",
			name, viol.I, viol.QI, viol.J, viol.QJ)
	}
	return rep.Monotone.OK, viol == nil
}

// TestStaticSoundnessFuzzCorpora sweeps every parseable query of both
// committed fuzz corpora through the static-vs-semantic cross-check.
func TestStaticSoundnessFuzzCorpora(t *testing.T) {
	swept, proved, gap := 0, 0, 0

	// fo corpus: whole queries, plus bare formulas closed over their
	// free variables.
	var foQueries []*fo.Query
	for _, src := range corpusInputs(t, "../fo/testdata/fuzz/FuzzParseQuery") {
		if q, err := fo.ParseQuery(src); err == nil {
			foQueries = append(foQueries, q)
		}
	}
	for _, src := range corpusInputs(t, "../fo/testdata/fuzz/FuzzParse") {
		f, err := fo.Parse(src)
		if err != nil {
			continue
		}
		fv := fo.FreeVars(f)
		head := make([]string, len(fv))
		for i, v := range fv {
			head[i] = string(v)
		}
		if q, err := fo.NewQuery("corpus", head, f); err == nil {
			foQueries = append(foQueries, q)
		}
	}
	for i, q := range foQueries {
		arities := map[string]int{}
		consts := map[fact.Value]bool{}
		foSig(q.Body, arities, consts)
		name := "fo-corpus-" + strconv.Itoa(i)
		p, unrefuted := checkQuerySoundness(t, name, q, arities, consts)
		swept++
		if p {
			proved++
		} else if unrefuted {
			gap++
		}
	}

	// datalog corpus: each parseable program queried at the head
	// predicate of its last rule.
	for i, src := range corpusInputs(t, "../datalog/testdata/fuzz/FuzzParse") {
		p, err := datalog.Parse(src)
		if err != nil || len(p.Rules) == 0 {
			continue
		}
		q, err := datalog.NewQuery(p, p.Rules[len(p.Rules)-1].Head.Pred)
		if err != nil {
			continue
		}
		arities := map[string]int{}
		for _, rel := range p.EDB() {
			arities[rel] = p.Arities().Arity(rel)
		}
		name := "datalog-corpus-" + strconv.Itoa(i)
		pr, unrefuted := checkQuerySoundness(t, name, q, arities, nil)
		swept++
		if pr {
			proved++
		} else if unrefuted {
			gap++
		}
	}

	if swept == 0 {
		t.Fatal("no corpus query survived parsing — the sweep is vacuous")
	}
	if proved == 0 {
		t.Error("no corpus query statically proved monotone — the sweep is near-vacuous")
	}
	t.Logf("corpora: %d queries swept, %d statically proved, completeness gap %d", swept, proved, gap)
}

// TestWidenedProgramsStream pins the two acceptance programs: both
// were rejected by the pre-analyzer one-bit monotonicity check, are
// now statically accepted, and stream through dist.MonotoneStreaming
// to exactly the centralized answer.
func TestWidenedProgramsStream(t *testing.T) {
	net := network.Line(2)

	// 1. The assignment-free while query (the identity on S).
	wq := while.Query{P: while.MustNew("S", 1)}
	if !wq.SyntacticallyMonotone() {
		t.Fatal("assignment-free while query must be statically monotone")
	}
	wtr, err := dist.MonotoneStreaming(fact.Schema{"S": 1}, wq)
	if err != nil {
		t.Fatalf("MonotoneStreaming must accept the widened while query: %v", err)
	}
	I := fact.FromFacts(ff("S", "a"), ff("S", "b"))
	got, err := dist.RunToQuiescence(net, wtr, dist.RoundRobinSplit(I, net), dist.RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := wq.Eval(I)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("streamed while identity: got %v, want %v", got, want)
	}

	// 2. The datalog program with absorbed negation (a ∪ (b ∖ a)).
	dq := datalog.MustQuery(datalog.MustParse(`
		ans(X) :- a(X).
		ans(X) :- b(X), !a(X).
	`), "ans")
	if !dq.SyntacticallyMonotone() {
		t.Fatal("absorbed negation must be statically monotone")
	}
	dtr, err := dist.MonotoneStreaming(fact.Schema{"a": 1, "b": 1}, dq)
	if err != nil {
		t.Fatalf("MonotoneStreaming must accept the absorbed program: %v", err)
	}
	J := fact.FromFacts(ff("a", "p"), ff("b", "q"), ff("b", "p"))
	got, err = dist.RunToQuiescence(net, dtr, dist.RoundRobinSplit(J, net), dist.RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err = dq.Eval(J)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("streamed absorbed program: got %v, want %v", got, want)
	}
}
