package tm

// Library machines used by the Theorem 18 experiments. All stay within
// the simulation's constraints: they never move left of the first
// cell, and they extend the tape only to the right.

// EvenLength returns a machine accepting strings over {a, b} of even
// length: it scans right flipping between two parity states and
// accepts at the first blank in the even state.
func EvenLength() *Machine {
	m := &Machine{
		Name:     "evenLength",
		Start:    "qe",
		Accept:   "qacc",
		Alphabet: []string{"a", "b"},
		Delta: map[Key]Action{
			{State: "qe", Symbol: "a"}:   {State: "qo", Write: "a", Move: Right},
			{State: "qe", Symbol: "b"}:   {State: "qo", Write: "b", Move: Right},
			{State: "qo", Symbol: "a"}:   {State: "qe", Write: "a", Move: Right},
			{State: "qo", Symbol: "b"}:   {State: "qe", Write: "b", Move: Right},
			{State: "qe", Symbol: Blank}: {State: "qacc", Write: Blank, Move: Stay},
		},
	}
	return m
}

// EndsWithB returns a machine accepting strings over {a, b} ending
// in b: it scans right remembering the previous symbol and accepts at
// the blank if the last seen symbol was b.
func EndsWithB() *Machine {
	return &Machine{
		Name:     "endsWithB",
		Start:    "q0",
		Accept:   "qacc",
		Alphabet: []string{"a", "b"},
		Delta: map[Key]Action{
			{State: "q0", Symbol: "a"}:   {State: "qa", Write: "a", Move: Right},
			{State: "q0", Symbol: "b"}:   {State: "qb", Write: "b", Move: Right},
			{State: "qa", Symbol: "a"}:   {State: "qa", Write: "a", Move: Right},
			{State: "qa", Symbol: "b"}:   {State: "qb", Write: "b", Move: Right},
			{State: "qb", Symbol: "a"}:   {State: "qa", Write: "a", Move: Right},
			{State: "qb", Symbol: "b"}:   {State: "qb", Write: "b", Move: Right},
			{State: "qb", Symbol: Blank}: {State: "qacc", Write: Blank, Move: Stay},
		},
	}
}

// ABStar returns a machine accepting (ab)+: alternating a, b pairs.
// It exercises rejection by getting stuck on malformed inputs.
func ABStar() *Machine {
	return &Machine{
		Name:     "abStar",
		Start:    "qa",
		Accept:   "qacc",
		Alphabet: []string{"a", "b"},
		Delta: map[Key]Action{
			{State: "qa", Symbol: "a"}:   {State: "qb", Write: "a", Move: Right},
			{State: "qb", Symbol: "b"}:   {State: "qa", Write: "b", Move: Right},
			{State: "qa", Symbol: Blank}: {State: "qacc", Write: Blank, Move: Stay},
		},
	}
}

// CopyExtend returns a machine that marks every input cell and then
// writes one x past the end before accepting — it forces the Dedalus
// simulation to extend the tape with an entangled timestamp cell
// (the crux of the Theorem 18 construction).
func CopyExtend() *Machine {
	return &Machine{
		Name:     "copyExtend",
		Start:    "scan",
		Accept:   "qacc",
		Alphabet: []string{"a", "b"},
		Delta: map[Key]Action{
			{State: "scan", Symbol: "a"}:   {State: "scan", Write: "a", Move: Right},
			{State: "scan", Symbol: "b"}:   {State: "scan", Write: "b", Move: Right},
			{State: "scan", Symbol: Blank}: {State: "mark", Write: "x", Move: Right},
			{State: "mark", Symbol: Blank}: {State: "qacc", Write: Blank, Move: Stay},
		},
	}
}

// All returns the machine library.
func All() []*Machine {
	return []*Machine{EvenLength(), EndsWithB(), ABStar(), CopyExtend()}
}
