// Package tm implements the deterministic single-tape Turing machine
// substrate needed by §8 of the paper (Theorem 18: every Turing
// machine is simulated by an eventually consistent Dedalus program),
// together with the word-structure encoding of strings as database
// instances over the schema SΣ = {Tape/2, Begin/1, End/1} ∪ {a/1}.
package tm

import (
	"fmt"

	"declnet/internal/fact"
)

// Move is a head direction.
type Move int

// Head movement directions. The simulated machines never move left of
// the first cell.
const (
	Left  Move = -1
	Right Move = +1
	Stay  Move = 0
)

// Blank is the blank tape symbol.
const Blank = "_"

// Key identifies a transition by state and scanned symbol.
type Key struct {
	State  string
	Symbol string
}

// Action is the effect of a transition: next state, written symbol,
// and head movement.
type Action struct {
	State string
	Write string
	Move  Move
}

// Machine is a deterministic single-tape Turing machine. A missing
// transition halts the machine (rejecting unless in Accept).
type Machine struct {
	Name   string
	Start  string
	Accept string
	// Alphabet is the input alphabet (excluding Blank).
	Alphabet []string
	Delta    map[Key]Action
}

// TapeAlphabet returns every symbol that can appear on the tape: the
// input alphabet, the blank, and every written symbol.
func (m *Machine) TapeAlphabet() []string {
	seen := map[string]bool{Blank: true}
	out := []string{Blank}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, a := range m.Alphabet {
		add(a)
	}
	for _, act := range m.Delta {
		add(act.Write)
	}
	return out
}

// Validate checks basic well-formedness.
func (m *Machine) Validate() error {
	if m.Start == "" || m.Accept == "" {
		return fmt.Errorf("tm: machine %s missing start or accept state", m.Name)
	}
	if len(m.Alphabet) == 0 {
		return fmt.Errorf("tm: machine %s has empty alphabet", m.Name)
	}
	for k, a := range m.Delta {
		if k.State == m.Accept {
			return fmt.Errorf("tm: machine %s has transition out of accept state %s", m.Name, k.State)
		}
		if a.State == "" || a.Write == "" {
			return fmt.Errorf("tm: machine %s has malformed action for %v", m.Name, k)
		}
	}
	return nil
}

// Result is the outcome of a direct machine run.
type Result struct {
	Accepted bool
	Halted   bool
	Steps    int
}

// Run executes the machine directly on the input string (sequence of
// alphabet symbols) for at most maxSteps steps. The tape extends to
// the right with blanks on demand; moving left of the first cell
// halts and rejects.
func (m *Machine) Run(input []string, maxSteps int) Result {
	tape := append([]string(nil), input...)
	if len(tape) == 0 {
		tape = []string{Blank}
	}
	pos := 0
	state := m.Start
	for step := 0; step < maxSteps; step++ {
		if state == m.Accept {
			return Result{Accepted: true, Halted: true, Steps: step}
		}
		act, ok := m.Delta[Key{State: state, Symbol: tape[pos]}]
		if !ok {
			return Result{Halted: true, Steps: step}
		}
		tape[pos] = act.Write
		state = act.State
		switch act.Move {
		case Right:
			pos++
			if pos == len(tape) {
				tape = append(tape, Blank)
			}
		case Left:
			pos--
			if pos < 0 {
				return Result{Halted: true, Steps: step + 1}
			}
		}
	}
	if state == m.Accept {
		return Result{Accepted: true, Halted: true, Steps: maxSteps}
	}
	return Result{}
}

// EncodeWord encodes a string s = a1...ap (p ≥ 2) as the word
// structure of §8: facts Tape(pos1,pos2), ..., Begin(pos1), End(posp)
// and a(posi) for each letter. Positions are named c1..cp, avoiding
// collision with the numeric timestamp values Dedalus entangles.
func EncodeWord(letters []string) (*fact.Instance, error) {
	if len(letters) < 2 {
		return nil, fmt.Errorf("tm: word structures require length ≥ 2, got %d", len(letters))
	}
	I := fact.NewInstance()
	pos := func(i int) fact.Value { return fact.Value(fmt.Sprintf("c%d", i+1)) }
	for i, a := range letters {
		I.AddFact(fact.NewFact(a, pos(i)))
		if i+1 < len(letters) {
			I.AddFact(fact.NewFact("Tape", pos(i), pos(i+1)))
		}
	}
	I.AddFact(fact.NewFact("Begin", pos(0)))
	I.AddFact(fact.NewFact("End", pos(len(letters)-1)))
	return I, nil
}

// DecodeWord extracts the string from a word structure, verifying the
// §8 well-formedness conditions (single Begin/End, unique labels, Tape
// a successor relation covering the active domain). It returns an
// error describing the spurious condition otherwise.
func DecodeWord(I *fact.Instance, alphabet []string) ([]string, error) {
	begin := I.RelationOr("Begin", 1)
	end := I.RelationOr("End", 1)
	if begin.Len() != 1 || end.Len() != 1 {
		return nil, fmt.Errorf("tm: Begin/End not singletons")
	}
	label := map[fact.Value]string{}
	for _, a := range alphabet {
		rel := I.Relation(a)
		if rel == nil {
			continue
		}
		var err error
		rel.Each(func(t fact.Tuple) bool {
			if prev, dup := label[t[0]]; dup && prev != a {
				err = fmt.Errorf("tm: element %s labeled %s and %s", t[0], prev, a)
				return false
			}
			label[t[0]] = a
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	next := map[fact.Value]fact.Value{}
	indeg := map[fact.Value]int{}
	tape := I.RelationOr("Tape", 2)
	var err error
	tape.Each(func(t fact.Tuple) bool {
		if _, dup := next[t[0]]; dup {
			err = fmt.Errorf("tm: out-degree > 1 at %s", t[0])
			return false
		}
		next[t[0]] = t[1]
		indeg[t[1]]++
		if indeg[t[1]] > 1 {
			err = fmt.Errorf("tm: in-degree > 1 at %s", t[1])
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var cur fact.Value
	begin.Each(func(t fact.Tuple) bool { cur = t[0]; return false })
	var endV fact.Value
	end.Each(func(t fact.Tuple) bool { endV = t[0]; return false })

	var word []string
	seen := map[fact.Value]bool{}
	for {
		if seen[cur] {
			return nil, fmt.Errorf("tm: cycle in Tape at %s", cur)
		}
		seen[cur] = true
		a, ok := label[cur]
		if !ok {
			return nil, fmt.Errorf("tm: unlabeled element %s", cur)
		}
		word = append(word, a)
		if cur == endV {
			break
		}
		nxt, ok := next[cur]
		if !ok {
			return nil, fmt.Errorf("tm: chain breaks at %s before End", cur)
		}
		cur = nxt
	}
	// Phantom elements: anything in the active domain not on the chain.
	for _, v := range I.ActiveDomain() {
		if !seen[v] {
			return nil, fmt.Errorf("tm: phantom element %s", v)
		}
	}
	if len(word) < 2 {
		return nil, fmt.Errorf("tm: word shorter than 2")
	}
	return word, nil
}
