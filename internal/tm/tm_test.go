package tm

import (
	"reflect"
	"strings"
	"testing"

	"declnet/internal/fact"
)

func split(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "")
}

func TestMachinesValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := &Machine{Name: "bad", Start: "q", Accept: "q", Alphabet: []string{"a"},
		Delta: map[Key]Action{{State: "q", Symbol: "a"}: {State: "q", Write: "a"}}}
	if err := bad.Validate(); err == nil {
		t.Error("transition out of accept state accepted")
	}
}

func TestEvenLength(t *testing.T) {
	m := EvenLength()
	cases := map[string]bool{
		"ab": true, "aabb": true, "ba": true, "": true,
		"a": false, "aba": false, "babab": false,
	}
	for in, want := range cases {
		res := m.Run(split(in), 1000)
		if res.Accepted != want {
			t.Errorf("evenLength(%q) = %v, want %v", in, res.Accepted, want)
		}
		if !res.Halted && want {
			t.Errorf("evenLength(%q) did not halt", in)
		}
	}
}

func TestEndsWithB(t *testing.T) {
	m := EndsWithB()
	cases := map[string]bool{"ab": true, "b": true, "aab": true, "ba": false, "a": false, "": false}
	for in, want := range cases {
		if got := m.Run(split(in), 1000).Accepted; got != want {
			t.Errorf("endsWithB(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestABStarRejectsByStalling(t *testing.T) {
	m := ABStar()
	cases := map[string]bool{"ab": true, "abab": true, "aa": false, "ba": false, "aba": false}
	for in, want := range cases {
		res := m.Run(split(in), 1000)
		if res.Accepted != want {
			t.Errorf("abStar(%q) = %v, want %v", in, res.Accepted, want)
		}
		if !want && !res.Halted {
			t.Errorf("abStar(%q) should halt by stalling", in)
		}
	}
}

func TestCopyExtendGrowsTape(t *testing.T) {
	m := CopyExtend()
	res := m.Run(split("ab"), 1000)
	if !res.Accepted {
		t.Error("copyExtend should accept ab")
	}
	alpha := m.TapeAlphabet()
	found := false
	for _, s := range alpha {
		if s == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("tape alphabet %v missing written symbol x", alpha)
	}
}

func TestRunStepBudget(t *testing.T) {
	// A machine that loops forever on the first cell.
	loop := &Machine{
		Name: "loop", Start: "q", Accept: "qacc", Alphabet: []string{"a"},
		Delta: map[Key]Action{{State: "q", Symbol: "a"}: {State: "q", Write: "a", Move: Stay}},
	}
	res := loop.Run(split("a"), 50)
	if res.Halted || res.Accepted {
		t.Errorf("looping machine reported %+v", res)
	}
}

func TestEncodeDecodeWordRoundTrip(t *testing.T) {
	for _, w := range []string{"ab", "aabba", "bb"} {
		I, err := EncodeWord(split(w))
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeWord(I, []string{"a", "b"})
		if err != nil {
			t.Fatalf("decode %q: %v", w, err)
		}
		if !reflect.DeepEqual(got, split(w)) {
			t.Errorf("round trip %q -> %v", w, got)
		}
	}
	if _, err := EncodeWord(split("a")); err == nil {
		t.Error("length-1 word accepted")
	}
}

func TestDecodeWordSpuriousConditions(t *testing.T) {
	mk := func() *fact.Instance {
		I, _ := EncodeWord(split("ab"))
		return I
	}
	cases := []struct {
		name string
		mut  func(*fact.Instance)
	}{
		{"two begins", func(I *fact.Instance) { I.AddFact(fact.NewFact("Begin", "c2")) }},
		{"double label", func(I *fact.Instance) { I.AddFact(fact.NewFact("b", "c1")) }},
		{"outdegree", func(I *fact.Instance) {
			I.AddFact(fact.NewFact("Tape", "c1", "zz"))
			I.AddFact(fact.NewFact("a", "zz"))
		}},
		{"phantom", func(I *fact.Instance) { I.AddFact(fact.NewFact("a", "ghost")) }},
		{"cycle", func(I *fact.Instance) {
			I.RemoveFact(fact.NewFact("End", "c2"))
			I.AddFact(fact.NewFact("Tape", "c2", "c1"))
			I.AddFact(fact.NewFact("End", "c1"))
		}},
	}
	for _, c := range cases {
		I := mk()
		c.mut(I)
		if _, err := DecodeWord(I, []string{"a", "b"}); err == nil {
			t.Errorf("%s: spurious structure decoded successfully", c.name)
		}
	}
}
