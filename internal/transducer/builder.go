package transducer

import (
	"declnet/internal/fact"
	"declnet/internal/query"
)

// Builder assembles a transducer incrementally; it is the ergonomic
// front door used by the proof-construction library in package dist
// and by examples.
type Builder struct {
	name   string
	schema Schema
	snd    map[string]query.Query
	ins    map[string]query.Query
	del    map[string]query.Query
	out    query.Query
}

// NewBuilder starts a builder for a transducer with the given name and
// input schema.
func NewBuilder(name string, in fact.Schema) *Builder {
	return &Builder{
		name:   name,
		schema: Schema{In: in.Clone(), Msg: fact.Schema{}, Mem: fact.Schema{}},
		snd:    map[string]query.Query{},
		ins:    map[string]query.Query{},
		del:    map[string]query.Query{},
	}
}

// Msg declares a message relation.
func (b *Builder) Msg(rel string, arity int) *Builder {
	b.schema.Msg[rel] = arity
	return b
}

// Mem declares a memory relation.
func (b *Builder) Mem(rel string, arity int) *Builder {
	b.schema.Mem[rel] = arity
	return b
}

// Snd sets the send query for a declared message relation.
func (b *Builder) Snd(rel string, q query.Query) *Builder {
	b.snd[rel] = q
	return b
}

// Ins sets the insertion query for a declared memory relation.
func (b *Builder) Ins(rel string, q query.Query) *Builder {
	b.ins[rel] = q
	return b
}

// Del sets the deletion query for a declared memory relation.
func (b *Builder) Del(rel string, q query.Query) *Builder {
	b.del[rel] = q
	return b
}

// Out sets the output query and arity.
func (b *Builder) Out(arity int, q query.Query) *Builder {
	b.schema.OutArity = arity
	b.out = q
	return b
}

// Build validates and returns the transducer.
func (b *Builder) Build() (*Transducer, error) {
	return New(b.name, b.schema, b.snd, b.ins, b.del, b.out)
}

// MustBuild is Build panicking on error.
func (b *Builder) MustBuild() *Transducer {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
