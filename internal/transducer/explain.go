package transducer

import (
	"fmt"
	"strings"

	"declnet/internal/query"
)

// ExplainPlans renders the compiled physical plan of every query of
// the transducer — send, insert and delete queries in sorted relation
// order, then the output query — in the stable textual form of the
// plan layer (chosen atom order, probe columns, guard placement,
// delta pins). The rendering exists to make plan regressions
// diffable: commit it, change the planner, diff.
func ExplainPlans(t *Transducer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "transducer %s\n", t.Name)
	section := func(kind string, rel string, q query.Query) {
		if q == nil {
			return
		}
		fmt.Fprintf(&b, "== %s", kind)
		if rel != "" {
			fmt.Fprintf(&b, " %s", rel)
		}
		b.WriteString(" ==\n")
		b.WriteString(query.ExplainPlan(q))
	}
	for _, rel := range sortedRels(t.Schema.Msg) {
		section("snd", rel, t.Snd[rel])
	}
	for _, rel := range sortedRels(t.Schema.Mem) {
		section("ins", rel, t.Ins[rel])
		section("del", rel, t.Del[rel])
	}
	section("out", "", t.Out)
	return b.String()
}
