package transducer

import (
	"fmt"

	"declnet/internal/fact"
	"declnet/internal/query"
)

// Firing is an incremental evaluator for one transducer placed at one
// node: it caches the result of every transducer query on the node's
// current state and replays transitions against (state, Δ) instead of
// re-evaluating every query on the full state.
//
// The produced effects are identical to Transducer.Step —
// incrementality is an evaluation strategy, not a semantics change.
// Four mechanisms carry it:
//
//   - Message deltas. Received facts live in message relations, which
//     are disjoint from the state schema; a query that does not read
//     them is answered from the cache whenever it is rel-bounded OR
//     the received values already occur in the state's active domain
//     (a query result is a function of the relations it reads and
//     adom(I), so nothing it depends on has changed). Delta-evaluable
//     queries (query.DeltaEvaluable — positive FO branches) are
//     answered as cache ∪ EvalDelta(state ∪ Δrcv, Δrcv).
//   - State deltas. When a transition only adds memory facts (the
//     paper's inflationary case), cached results advance by semi-naive
//     delta firing over the added facts, or survive untouched when
//     the additions miss the query's reads and active domain.
//   - Lazy probes. The quiescence check never needs the successor
//     instance, only whether it differs; ProbeParts decides that with
//     subset checks, memoized on result pointers.
//   - Fallback. Queries that fit none of the above are re-evaluated
//     in full — the exact original semantics.
type Firing struct {
	T *Transducer

	// state is the instance the cache entries are valid for, compared
	// by pointer identity: network feeds each Effect.State back as the
	// next call's state, so a mismatch means the caller switched
	// configurations and the cache must be rebuilt.
	state *fact.Instance

	queries []firingQuery
	cache   []*fact.Relation
	memRels []memEntry
	outIdx  int

	// quietMem memoizes, per memory relation, the (ins, del, old)
	// relation-pointer triple that last verified "no state change" in
	// ProbeParts. Relations are immutable once published, so pointer
	// equality implies content equality and the memo never goes stale;
	// it is reset whenever the cache moves to a new state.
	quietMem map[string][3]*fact.Relation

	// sndScratch is reused by consecutive ProbeParts calls.
	sndScratch []SndResult
}

// firingQuery is one transducer query with its precomputed
// incremental capabilities.
type firingQuery struct {
	key   string // "snd:R", "ins:R", "del:R", "out"
	kind  byte   // 's', 'i', 'd', 'o'
	rel   string
	q     query.Query
	reads map[string]bool
	// delta: exact semi-naive delta evaluation available.
	delta bool
	// bounded: result depends only on the relations in reads.
	bounded bool
}

// memEntry locates the insert and delete query slots of one memory
// relation (-1 when absent).
type memEntry struct {
	rel      string
	arity    int
	ins, del int
}

// NewFiring prepares an incremental evaluator for t.
func NewFiring(t *Transducer) *Firing {
	f := &Firing{T: t, outIdx: -1, quietMem: map[string][3]*fact.Relation{}}
	add := func(kind byte, key, rel string, q query.Query) int {
		if q == nil {
			return -1
		}
		reads := map[string]bool{}
		for _, r := range q.Rels() {
			reads[r] = true
		}
		f.queries = append(f.queries, firingQuery{
			key: key, kind: kind, rel: rel, q: q, reads: reads,
			delta:   query.CanDelta(q),
			bounded: query.IsRelBounded(q),
		})
		return len(f.queries) - 1
	}
	for _, rel := range sortedRels(t.Schema.Msg) {
		add('s', "snd:"+rel, rel, t.Snd[rel])
	}
	for _, rel := range sortedRels(t.Schema.Mem) {
		e := memEntry{rel: rel, arity: t.Schema.Mem[rel]}
		e.ins = add('i', "ins:"+rel, rel, t.Ins[rel])
		e.del = add('d', "del:"+rel, rel, t.Del[rel])
		f.memRels = append(f.memRels, e)
	}
	f.outIdx = add('o', "out", "", t.Out)
	f.cache = make([]*fact.Relation, len(f.queries))
	return f
}

// resync drops the cache when the caller's state is not the one the
// cache was built for.
func (f *Firing) resync(state *fact.Instance) {
	if f.state != state {
		f.state = state
		for i := range f.cache {
			f.cache[i] = nil
		}
		f.quietMem = map[string][3]*fact.Relation{}
	}
}

// cachedOn returns (building if necessary) the cached result of query
// i on the current state.
func (f *Firing) cachedOn(state *fact.Instance, i int) (*fact.Relation, error) {
	if f.cache[i] == nil {
		r, err := f.queries[i].q.Eval(state)
		if err != nil {
			return nil, err
		}
		f.cache[i] = r
	}
	return f.cache[i], nil
}

// evalCtx carries the per-transition evaluation context: I' = state ∪
// rcv (built lazily — cache hits never need it) and the lazily
// decided "received values within adom(state)" verdict shared by all
// queries of the transition.
type evalCtx struct {
	state, rcv, iPrime *fact.Instance
	rcvRels            map[string]bool
	within             int8 // 0 unknown, 1 yes, -1 no
}

func newEvalCtx(state, rcv *fact.Instance) *evalCtx {
	c := &evalCtx{state: state, rcv: rcv}
	if rcv != nil {
		for _, n := range rcv.RelNames() {
			if r := rcv.Relation(n); r != nil && !r.Empty() {
				if c.rcvRels == nil {
					c.rcvRels = map[string]bool{}
				}
				c.rcvRels[n] = true
			}
		}
	}
	return c
}

// prime materializes I' = state ∪ rcv on first use.
func (c *evalCtx) prime() *fact.Instance {
	if c.iPrime == nil {
		iPrime := c.state.ShallowClone()
		for n := range c.rcvRels {
			iPrime.SetRelationOwned(n, c.rcv.Relation(n))
		}
		c.iPrime = iPrime
	}
	return c.iPrime
}

// withinAdom reports whether every received value already occurs in
// the state's active domain — in that case adom(I') = adom(state) and
// queries that read no message relation are unaffected by the
// delivery.
func (c *evalCtx) withinAdom() bool {
	if c.within == 0 {
		c.within = 1
		for n := range c.rcvRels {
			c.rcv.Relation(n).Each(func(t fact.Tuple) bool {
				for _, v := range t {
					if !c.state.AdomContains(v) {
						c.within = -1
						return false
					}
				}
				return true
			})
			if c.within < 0 {
				break
			}
		}
	}
	return c.within > 0
}

// evalOne computes query i on state ∪ rcv. The returned relation may
// be shared cache storage; callers must not mutate it. Results are
// pointer-stable: the same relation object comes back as long as
// nothing the query depends on changes, which the sim exploits to
// memoize downstream bookkeeping.
func (f *Firing) evalOne(c *evalCtx, i int) (*fact.Relation, error) {
	fq := &f.queries[i]
	if len(c.rcvRels) == 0 {
		// No received facts: state ∪ rcv = state exactly.
		return f.cachedOn(c.state, i)
	}
	if !intersects(fq.reads, c.rcvRels) && (fq.bounded || c.withinAdom()) {
		// The query cannot see the received facts: its relations are
		// untouched and (rel-bounded, or adom-unchanged) nothing else
		// it may depend on moved.
		return f.cachedOn(c.state, i)
	}
	if fq.delta {
		base, err := f.cachedOn(c.state, i)
		if err != nil {
			return nil, err
		}
		d, err := fq.q.(query.DeltaEvaluable).EvalDelta(c.prime(), c.rcv)
		if err != nil {
			return nil, err
		}
		if d.SubsetOf(base) {
			// Nothing new (e.g. a re-delivered known fact): keep the
			// pointer-stable cached result.
			return base, nil
		}
		out := base.Clone()
		out.UnionWith(d)
		return out, nil
	}
	return fq.q.Eval(c.prime())
}

// evalAll evaluates every transducer query on (state, rcv).
func (f *Firing) evalAll(state, rcv *fact.Instance) ([]*fact.Relation, error) {
	c := newEvalCtx(state, rcv)
	results := make([]*fact.Relation, len(f.queries))
	for i := range f.queries {
		r, err := f.evalOne(c, i)
		if err != nil {
			return nil, fmt.Errorf("transducer %s: %s: %w", f.T.Name, f.queries[i].key, err)
		}
		results[i] = r
	}
	return results, nil
}

func (f *Firing) resultOr(results []*fact.Relation, idx, arity int) *fact.Relation {
	if idx < 0 {
		if f.state != nil {
			return f.state.Dict().NewRelation(arity)
		}
		return fact.NewRelation(arity)
	}
	return results[idx]
}

// effect assembles the full transition effect from the per-query
// results. It performs no cache maintenance.
func (f *Firing) effect(state *fact.Instance, results []*fact.Relation) Effect {
	snd := state.Dict().NewInstance()
	for i := range f.queries {
		fq := &f.queries[i]
		if fq.kind == 's' {
			snd.SetRelationOwned(fq.rel, results[i])
		}
	}
	out := f.resultOr(results, f.outIdx, f.T.Schema.OutArity)

	next := state.ShallowClone()
	for _, e := range f.memRels {
		ins := f.resultOr(results, e.ins, e.arity)
		del := f.resultOr(results, e.del, e.arity)
		old := state.RelationOr(e.rel, e.arity)
		var updated *fact.Relation
		if del.Empty() {
			// Inflationary fast path: J(R) = Qins ∪ I(R); reuse the old
			// relation object when the insert adds nothing, so that the
			// state diff and the sim's memos can compare by pointer.
			if ins.SubsetOf(old) {
				updated = old
			} else {
				updated = old.Clone()
				updated.UnionWith(ins)
			}
		} else {
			updated = ins.Minus(del)                             // Qins \ Qdel
			updated.UnionWith(ins.Intersect(del).Intersect(old)) // conflicts keep old tuples
			updated.UnionWith(old.Minus(unionRel(ins, del)))     // untouched tuples persist
			if updated.Equal(old) {
				updated = old
			}
		}
		if updated != old {
			next.SetRelationOwned(e.rel, updated)
		}
		// An unchanged relation is already in next via ShallowClone;
		// skipping the reinstall keeps the instance's active-domain
		// memo (SetRelationOwned must conservatively drop it).
	}
	return Effect{State: next, Snd: snd, Out: out}
}

// SndResult is one send-query result: the message relation name and
// the tuples the probed transition would send on it.
type SndResult struct {
	Rel string
	R   *fact.Relation
}

// ProbeParts is the lazily evaluated transition probe behind the
// quiescence check: it reports whether the transition from
// (state, rcv) would change the state, and exposes the send and
// output results, WITHOUT building the successor instance or
// advancing the cache. Unchanged-state verdicts are memoized per
// memory relation on the result pointers, so repeated probes of a
// saturated node cost a handful of pointer compares. The returned
// relations and slice are shared storage and must not be mutated.
func (f *Firing) ProbeParts(state, rcv *fact.Instance) (stateChanged bool, snd []SndResult, out *fact.Relation, err error) {
	f.resync(state)
	results, err := f.evalAll(state, rcv)
	if err != nil {
		return false, nil, nil, err
	}
	for _, e := range f.memRels {
		var ins, del *fact.Relation
		if e.ins >= 0 {
			ins = results[e.ins]
		}
		if e.del >= 0 {
			del = results[e.del]
		}
		// Relation (not RelationOr): nil is a stable sentinel for an
		// absent relation, so the pointer memo keeps working for
		// memory relations the node never materialized.
		old := state.Relation(e.rel)
		if memo, ok := f.quietMem[e.rel]; ok && memo[0] == ins && memo[1] == del && memo[2] == old {
			continue
		}
		if !memUnchanged(ins, del, old) {
			return true, nil, nil, nil
		}
		f.quietMem[e.rel] = [3]*fact.Relation{ins, del, old}
	}
	if f.sndScratch == nil {
		f.sndScratch = make([]SndResult, 0, len(f.queries))
	}
	snd = f.sndScratch[:0]
	for i := range f.queries {
		fq := &f.queries[i]
		if fq.kind == 's' {
			snd = append(snd, SndResult{Rel: fq.rel, R: results[i]})
		}
	}
	out = f.resultOr(results, f.outIdx, f.T.Schema.OutArity)
	return false, snd, out, nil
}

// memUnchanged reports whether the conflict-resolution update
//
//	J(R) = (Qins \ Qdel) ∪ (Qins ∩ Qdel ∩ I(R)) ∪ (I(R) \ (Qins ∪ Qdel))
//
// leaves I(R) unchanged, without materializing J(R): that holds iff
// Qins \ Qdel ⊆ I(R) (nothing appears) and I(R) ∩ (Qdel \ Qins) = ∅
// (nothing disappears). Cost is O(|Qins| + |Qdel|), independent of
// the state size. A nil old stands for the absent (empty) relation.
func memUnchanged(ins, del, old *fact.Relation) bool {
	unchanged := true
	if ins != nil {
		ins.Each(func(t fact.Tuple) bool {
			if del != nil && del.Contains(t) {
				return true // conflict: tuple keeps its old status
			}
			if old == nil || !old.Contains(t) {
				unchanged = false
			}
			return unchanged
		})
		if !unchanged {
			return false
		}
	}
	if del != nil && old != nil {
		del.Each(func(t fact.Tuple) bool {
			if ins != nil && ins.Contains(t) {
				return true // conflict: tuple keeps its old status
			}
			if old.Contains(t) {
				unchanged = false
			}
			return unchanged
		})
	}
	return unchanged
}

// Probe evaluates the full transition effect from (state, rcv)
// without executing it: the cache is read but never advanced, so the
// configuration's evaluator stays consistent even when the probed
// effect is discarded. Relations in the returned Effect may be shared
// cache storage; callers must not mutate them.
func (f *Firing) Probe(state, rcv *fact.Instance) (Effect, error) {
	f.resync(state)
	results, err := f.evalAll(state, rcv)
	if err != nil {
		return Effect{}, err
	}
	return f.effect(state, results), nil
}

// Step executes one transition from (state, rcv), advancing the cache
// onto the new state: per-query results are kept verbatim when the
// transition cannot have changed them, advanced by semi-naive delta
// firing when the state only grew, and dropped otherwise. The second
// return reports whether the state changed. Relations in the returned
// Effect may be shared cache storage; callers must not mutate them.
func (f *Firing) Step(state, rcv *fact.Instance) (Effect, bool, error) {
	f.resync(state)
	results, err := f.evalAll(state, rcv)
	if err != nil {
		return Effect{}, false, err
	}
	eff := f.effect(state, results)

	// Diff the memory update to learn how the state changed; effect
	// reuses old relation objects for untouched memory, making the
	// common no-change case a pointer compare.
	var changed map[string]bool
	var added *fact.Instance
	removedAny := false
	for _, e := range f.memRels {
		old := state.RelationOr(e.rel, e.arity)
		now := eff.State.RelationOr(e.rel, e.arity)
		if old == now {
			continue
		}
		if old.Len() == now.Len() && now.SubsetOf(old) {
			continue
		}
		if changed == nil {
			changed = map[string]bool{}
			added = state.Dict().NewInstance()
		}
		changed[e.rel] = true
		add := now.Minus(old)
		if !add.Empty() {
			added.SetRelationOwned(e.rel, add)
		}
		if !old.SubsetOf(now) {
			removedAny = true
		}
	}

	if len(changed) == 0 {
		// State content unchanged: every cache entry remains valid;
		// only the state pointer moves. The successor has the same
		// content, so it can share the active-domain memo — without
		// this, every no-op firing (the steady state of a quiescing
		// network) drops the memo and the next firing rescans the
		// whole state, which is O(|All|) per node per round.
		eff.State.AdoptActiveDomain(state, nil)
		f.state = eff.State
		return eff, false, nil
	}

	// newVals collects added values outside the state's active domain.
	// addedWithin (no such values) lets cached results of queries that
	// read none of the changed relations stay exact even for
	// adom-sensitive queries; either way, an additive transition can
	// seed the successor's active-domain memo instead of rescanning.
	var newVals []fact.Value
	if !removedAny {
		for _, n := range added.RelNames() {
			added.Relation(n).Each(func(t fact.Tuple) bool {
				for _, v := range t {
					if !state.AdomContains(v) {
						newVals = append(newVals, v)
					}
				}
				return true
			})
		}
		eff.State.AdoptActiveDomain(state, newVals)
	}
	addedWithin := !removedAny && len(newVals) == 0

	for i := range f.queries {
		fq := &f.queries[i]
		touched := intersects(fq.reads, changed)
		switch {
		case f.cache[i] == nil:
			// nothing cached; stays lazily computed
		case !touched && (fq.bounded || addedWithin):
			// reads untouched relations only, and nothing else the
			// query may depend on moved: still exact
		case !removedAny && fq.delta:
			d, err := fq.q.(query.DeltaEvaluable).EvalDelta(eff.State, added)
			if err != nil {
				return Effect{}, false, fmt.Errorf("transducer %s: advance %s: %w", f.T.Name, fq.key, err)
			}
			if !d.Empty() {
				// Clone before growing: the cached relation may be
				// aliased by a previously returned Effect.
				nc := f.cache[i].Clone()
				nc.UnionWith(d)
				f.cache[i] = nc
			}
		default:
			f.cache[i] = nil
		}
	}
	f.state = eff.State
	f.quietMem = map[string][3]*fact.Relation{}
	return eff, true, nil
}

func intersects(a, b map[string]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}
