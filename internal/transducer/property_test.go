package transducer

import (
	"math/rand"
	"testing"

	"declnet/internal/fact"
	"declnet/internal/query"
)

// fixedRelQuery returns a query producing a fixed unary relation,
// ignoring its input — a handle for driving the update formula with
// arbitrary insert/delete sets.
func fixedRelQuery(vals []fact.Value) query.Query {
	return query.NewFunc("fixed", 1, nil, true,
		func(*fact.Instance) (*fact.Relation, error) {
			r := fact.NewRelation(1)
			for _, v := range vals {
				r.Add(fact.Tuple{v})
			}
			return r, nil
		})
}

// applyUpdateFormula computes the §2.1 memory update directly from its
// set definition, as the specification to test Step against.
func applyUpdateFormula(old, ins, del map[fact.Value]bool) map[fact.Value]bool {
	out := map[fact.Value]bool{}
	for v := range ins {
		if !del[v] {
			out[v] = true // Qins \ Qdel
		} else if old[v] {
			out[v] = true // Qins ∩ Qdel ∩ I(R)
		}
	}
	for v := range old {
		if !ins[v] && !del[v] {
			out[v] = true // I(R) \ (Qins ∪ Qdel)
		}
	}
	return out
}

func TestPropUpdateFormulaMatchesSpec(t *testing.T) {
	// For random old/ins/del sets, Step must realize the paper's
	// update formula exactly.
	r := rand.New(rand.NewSource(321))
	universe := []fact.Value{"a", "b", "c", "d", "e"}
	pick := func() (map[fact.Value]bool, []fact.Value) {
		m := map[fact.Value]bool{}
		var s []fact.Value
		for _, v := range universe {
			if r.Intn(2) == 0 {
				m[v] = true
				s = append(s, v)
			}
		}
		return m, s
	}
	for trial := 0; trial < 200; trial++ {
		oldSet, oldVals := pick()
		insSet, insVals := pick()
		delSet, delVals := pick()

		tr := NewBuilder("prop", fact.Schema{}).
			Mem("R", 1).
			Ins("R", fixedRelQuery(insVals)).
			Del("R", fixedRelQuery(delVals)).
			Out(0, nil).
			MustBuild()
		state := fact.NewInstance()
		for _, v := range oldVals {
			state.AddFact(fact.NewFact("R", v))
		}
		eff, err := tr.Step(state, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := applyUpdateFormula(oldSet, insSet, delSet)
		got := eff.State.RelationOr("R", 1)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: |R| = %d, want %d (old=%v ins=%v del=%v)",
				trial, got.Len(), len(want), oldVals, insVals, delVals)
		}
		for v := range want {
			if !got.Contains(fact.Tuple{v}) {
				t.Fatalf("trial %d: missing %s", trial, v)
			}
		}
	}
}

func TestPropInflationaryStateGrows(t *testing.T) {
	// An inflationary transducer's memory only ever grows along a run
	// of random steps.
	r := rand.New(rand.NewSource(9))
	tr := NewBuilder("infl", fact.Schema{"S": 1}).
		Msg("M", 1).
		Mem("R", 1).
		Ins("R", query.UnionOf(1, "M", "R", "S")).
		Out(0, nil).
		MustBuild()
	if !tr.Inflationary() {
		t.Fatal("misclassified")
	}
	vals := []fact.Value{"a", "b", "c", "d"}
	state := fact.FromFacts(fact.NewFact("S", "a"))
	for step := 0; step < 60; step++ {
		var rcv *fact.Instance
		if r.Intn(2) == 0 {
			rcv = fact.FromFacts(fact.NewFact("M", vals[r.Intn(4)]))
		}
		eff, err := tr.Step(state, rcv)
		if err != nil {
			t.Fatal(err)
		}
		oldR := state.RelationOr("R", 1)
		newR := eff.State.RelationOr("R", 1)
		if !oldR.SubsetOf(newR) {
			t.Fatalf("step %d: memory shrank: %v -> %v", step, oldR, newR)
		}
		state = eff.State
	}
}

func TestPropStepGenericity(t *testing.T) {
	// Transducer transitions are generic: permuting dom commutes with
	// Step (for transducers whose queries are generic, which all FO
	// ones are).
	tr := NewBuilder("gen", fact.Schema{"S": 2}).
		Msg("M", 2).
		Mem("R", 2).
		Snd("M", query.Copy("S", 2)).
		Ins("R", query.UnionOf(2, "M", "R")).
		Out(2, query.Copy("R", 2)).
		MustBuild()

	state := fact.FromFacts(fact.NewFact("S", "a", "b"), fact.NewFact("R", "b", "c"))
	rcv := fact.FromFacts(fact.NewFact("M", "c", "a"))
	h := map[fact.Value]fact.Value{"a": "b", "b": "c", "c": "a"}

	eff1, err := tr.Step(state, rcv)
	if err != nil {
		t.Fatal(err)
	}
	eff2, err := tr.Step(state.ApplyPermutation(h), rcv.ApplyPermutation(h))
	if err != nil {
		t.Fatal(err)
	}
	if !eff1.State.ApplyPermutation(h).Equal(eff2.State) {
		t.Error("state genericity violated")
	}
	if !eff1.Snd.ApplyPermutation(h).Equal(eff2.Snd) {
		t.Error("send genericity violated")
	}
	if !fact.ApplyPermutationRel(eff1.Out, h).Equal(eff2.Out) {
		t.Error("output genericity violated")
	}
}
