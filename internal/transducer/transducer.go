// Package transducer implements the abstract relational transducer
// model of §2.1 of the paper: a transducer schema (Sin, Ssys, Smsg,
// Smem, k) and a collection of queries {Q_snd^R}, {Q_ins^R},
// {Q_del^R}, Q_out over the combined schema, together with the
// deterministic local transition relation
//
//	I, Ircv --Jout--> J, Jsnd
//
// including the conflict-resolution memory update formula (conflicting
// simultaneous inserts and deletes leave a tuple unchanged).
//
// Per the paper's proviso (§3), the system schema Ssys always consists
// of the unary relations Id (the node's own identifier) and All (the
// set of all nodes). The syntactic classes of §4 — oblivious,
// inflationary, monotone — are recognized here.
package transducer

import (
	"fmt"
	"sort"

	"declnet/internal/fact"
	"declnet/internal/query"
)

// System relation names (§3 proviso).
const (
	SysId  = "Id"
	SysAll = "All"
)

// SysSchema is the fixed system schema {Id/1, All/1}.
func SysSchema() fact.Schema { return fact.Schema{SysId: 1, SysAll: 1} }

// Schema is a transducer schema: disjoint input, message and memory
// schemas plus the output arity. The system schema is implicit.
type Schema struct {
	In  fact.Schema
	Msg fact.Schema
	Mem fact.Schema
	// OutArity is the arity k of the output relation.
	OutArity int
}

// Combined returns Sin ∪ Ssys ∪ Smsg ∪ Smem, the schema every
// transducer query reads.
func (s Schema) Combined() (fact.Schema, error) {
	return s.In.Union(SysSchema(), s.Msg, s.Mem)
}

// StateSchema returns Sin ∪ Ssys ∪ Smem: the schema of transducer
// states.
func (s Schema) StateSchema() (fact.Schema, error) {
	return s.In.Union(SysSchema(), s.Mem)
}

// Validate checks pairwise disjointness and that no user schema
// redeclares a system relation.
func (s Schema) Validate() error {
	parts := []struct {
		name string
		s    fact.Schema
	}{{"in", s.In}, {"msg", s.Msg}, {"mem", s.Mem}, {"sys", SysSchema()}}
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if !parts[i].s.Disjoint(parts[j].s) {
				return fmt.Errorf("transducer: schemas %s and %s overlap", parts[i].name, parts[j].name)
			}
		}
	}
	if s.OutArity < 0 {
		return fmt.Errorf("transducer: negative output arity")
	}
	return nil
}

// Transducer is an abstract relational transducer: the queries
// Q_snd^R for message relations, Q_ins^R and Q_del^R for memory
// relations, and Q_out. Missing queries default to the empty query of
// the right arity, which in particular makes every transducer with no
// explicit deletion queries inflationary.
type Transducer struct {
	Schema Schema
	Snd    map[string]query.Query
	Ins    map[string]query.Query
	Del    map[string]query.Query
	Out    query.Query
	// Name identifies the transducer in traces and errors.
	Name string
}

// New validates and returns a transducer. Nil query maps are
// permitted; missing entries behave as empty queries.
func New(name string, schema Schema, snd, ins, del map[string]query.Query, out query.Query) (*Transducer, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	combined, err := schema.Combined()
	if err != nil {
		return nil, err
	}
	t := &Transducer{Schema: schema, Snd: snd, Ins: ins, Del: del, Out: out, Name: name}
	if t.Snd == nil {
		t.Snd = map[string]query.Query{}
	}
	if t.Ins == nil {
		t.Ins = map[string]query.Query{}
	}
	if t.Del == nil {
		t.Del = map[string]query.Query{}
	}
	if t.Out == nil {
		t.Out = query.Empty{K: schema.OutArity}
	}

	check := func(kind, rel string, q query.Query, wantArity int) error {
		if q == nil {
			return nil
		}
		if q.Arity() != wantArity {
			return fmt.Errorf("transducer %s: %s query for %s has arity %d, want %d", name, kind, rel, q.Arity(), wantArity)
		}
		for _, r := range q.Rels() {
			if !combined.Has(r) {
				return fmt.Errorf("transducer %s: %s query for %s reads %s outside combined schema %s", name, kind, rel, r, combined)
			}
		}
		return nil
	}
	for rel, q := range t.Snd {
		a := schema.Msg.Arity(rel)
		if a < 0 {
			return nil, fmt.Errorf("transducer %s: send query for undeclared message relation %s", name, rel)
		}
		if err := check("send", rel, q, a); err != nil {
			return nil, err
		}
	}
	for rel, q := range t.Ins {
		a := schema.Mem.Arity(rel)
		if a < 0 {
			return nil, fmt.Errorf("transducer %s: insert query for undeclared memory relation %s", name, rel)
		}
		if err := check("insert", rel, q, a); err != nil {
			return nil, err
		}
	}
	for rel, q := range t.Del {
		a := schema.Mem.Arity(rel)
		if a < 0 {
			return nil, fmt.Errorf("transducer %s: delete query for undeclared memory relation %s", name, rel)
		}
		if err := check("delete", rel, q, a); err != nil {
			return nil, err
		}
	}
	if err := check("output", "out", t.Out, schema.OutArity); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New panicking on error.
func MustNew(name string, schema Schema, snd, ins, del map[string]query.Query, out query.Query) *Transducer {
	t, err := New(name, schema, snd, ins, del, out)
	if err != nil {
		panic(err)
	}
	return t
}

// Effect is the result of one local transition: the new state, the
// messages sent and the tuples output.
type Effect struct {
	State *fact.Instance
	Snd   *fact.Instance
	Out   *fact.Relation
}

// Step performs one local transition from state I reading the message
// instance Ircv: it evaluates every query on I' = I ∪ Ircv, leaves
// input and system relations untouched, and updates memory with the
// paper's conflict-resolution formula
//
//	J(R) = (Qins \ Qdel) ∪ (Qins ∩ Qdel ∩ I(R)) ∪ (I(R) \ (Qins ∪ Qdel)).
//
// Transitions are deterministic: the effect is a function of (I, Ircv).
func (t *Transducer) Step(state *fact.Instance, rcv *fact.Instance) (Effect, error) {
	// The combined instance I' shares the (immutable) state relations;
	// message relations are disjoint from the state schema, so they
	// can be installed directly.
	iPrime := state.ShallowClone()
	if rcv != nil {
		for _, n := range rcv.RelNames() {
			iPrime.SetRelation(n, rcv.Relation(n))
		}
	}

	snd := iPrime.Dict().NewInstance()
	for _, rel := range sortedRels(t.Schema.Msg) {
		q := t.Snd[rel]
		if q == nil {
			continue
		}
		r, err := q.Eval(iPrime)
		if err != nil {
			return Effect{}, fmt.Errorf("transducer %s: send %s: %w", t.Name, rel, err)
		}
		snd.SetRelationOwned(rel, r)
	}

	out, err := t.Out.Eval(iPrime)
	if err != nil {
		return Effect{}, fmt.Errorf("transducer %s: output: %w", t.Name, err)
	}

	next := state.ShallowClone()
	for _, rel := range sortedRels(t.Schema.Mem) {
		arity := t.Schema.Mem[rel]
		ins := iPrime.Dict().NewRelation(arity)
		del := iPrime.Dict().NewRelation(arity)
		if q := t.Ins[rel]; q != nil {
			r, err := q.Eval(iPrime)
			if err != nil {
				return Effect{}, fmt.Errorf("transducer %s: insert %s: %w", t.Name, rel, err)
			}
			ins = r
		}
		if q := t.Del[rel]; q != nil {
			r, err := q.Eval(iPrime)
			if err != nil {
				return Effect{}, fmt.Errorf("transducer %s: delete %s: %w", t.Name, rel, err)
			}
			del = r
		}
		old := state.RelationOr(rel, arity)
		updated := ins.Minus(del)                            // Qins \ Qdel
		updated.UnionWith(ins.Intersect(del).Intersect(old)) // conflicts keep old tuples
		updated.UnionWith(old.Minus(unionRel(ins, del)))     // untouched tuples persist
		next.SetRelationOwned(rel, updated)
	}
	return Effect{State: next, Snd: snd, Out: out}, nil
}

func unionRel(a, b *fact.Relation) *fact.Relation {
	u := a.Clone()
	u.UnionWith(b)
	return u
}

func sortedRels(s fact.Schema) []string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// queries returns every query of the transducer (nil entries skipped).
func (t *Transducer) queries() []query.Query {
	var qs []query.Query
	for _, q := range t.Snd {
		qs = append(qs, q)
	}
	for _, q := range t.Ins {
		qs = append(qs, q)
	}
	for _, q := range t.Del {
		qs = append(qs, q)
	}
	qs = append(qs, t.Out)
	return qs
}

// Oblivious reports whether the transducer never reads the system
// relations Id and All (§4): it is unaware of the network context. By
// Proposition 11, network-topology independent oblivious transducers
// are coordination-free.
func (t *Transducer) Oblivious() bool {
	for _, q := range t.queries() {
		if query.Mentions(q, SysId, SysAll) {
			return false
		}
	}
	return true
}

// UsesId reports whether some query reads the Id relation.
func (t *Transducer) UsesId() bool {
	for _, q := range t.queries() {
		if query.Mentions(q, SysId) {
			return true
		}
	}
	return false
}

// UsesAll reports whether some query reads the All relation.
func (t *Transducer) UsesAll() bool {
	for _, q := range t.queries() {
		if query.Mentions(q, SysAll) {
			return true
		}
	}
	return false
}

// Inflationary reports whether the transducer performs no deletions:
// every deletion query is (syntactically) the empty query.
func (t *Transducer) Inflationary() bool {
	for _, q := range t.Del {
		if q == nil {
			continue
		}
		if _, empty := q.(query.Empty); !empty {
			return false
		}
	}
	return true
}

// Monotone reports whether every query of the transducer is
// syntactically monotone.
func (t *Transducer) Monotone() bool {
	for _, q := range t.queries() {
		if q != nil && !q.SyntacticallyMonotone() {
			return false
		}
	}
	return true
}
