package transducer

import (
	"testing"

	"declnet/internal/fact"
	"declnet/internal/fo"
	"declnet/internal/query"
)

func ff(rel string, args ...fact.Value) fact.Fact { return fact.NewFact(rel, args...) }

// echoTransducer: input S/1; message M/1; memory R/1.
// Sends its input, stores received messages, outputs memory.
func echoTransducer(t *testing.T) *Transducer {
	t.Helper()
	return NewBuilder("echo", fact.Schema{"S": 1}).
		Msg("M", 1).
		Mem("R", 1).
		Snd("M", fo.MustQuery("snd", []string{"x"}, fo.AtomF("S", "x"))).
		Ins("R", fo.MustQuery("ins", []string{"x"}, fo.AtomF("M", "x"))).
		Out(1, fo.MustQuery("out", []string{"x"}, fo.AtomF("R", "x"))).
		MustBuild()
}

func TestStepBasic(t *testing.T) {
	tr := echoTransducer(t)
	state := fact.FromFacts(ff("S", "a"), ff(SysId, "n1"), ff(SysAll, "n1"))
	eff, err := tr.Step(state, fact.FromFacts(ff("M", "z")))
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Snd.HasFact(ff("M", "a")) || eff.Snd.Size() != 1 {
		t.Errorf("Snd = %v", eff.Snd)
	}
	if !eff.State.HasFact(ff("R", "z")) {
		t.Errorf("State = %v", eff.State)
	}
	// Output evaluated on I' (memory R still empty in I).
	if eff.Out.Len() != 0 {
		t.Errorf("Out = %v", eff.Out)
	}
	// Input and system relations untouched.
	if !eff.State.HasFact(ff("S", "a")) || !eff.State.HasFact(ff(SysId, "n1")) {
		t.Error("input/system relations modified")
	}
	// Received messages are not persisted in state.
	if eff.State.HasFact(ff("M", "z")) {
		t.Error("message relation leaked into state")
	}
}

func TestStepDeterministic(t *testing.T) {
	tr := echoTransducer(t)
	state := fact.FromFacts(ff("S", "a"), ff("S", "b"))
	rcv := fact.FromFacts(ff("M", "a"))
	e1, err := tr.Step(state, rcv)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := tr.Step(state, rcv)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.State.Equal(e2.State) || !e1.Snd.Equal(e2.Snd) || !e1.Out.Equal(e2.Out) {
		t.Error("transitions are not deterministic")
	}
}

func TestUpdateFormulaConflictResolution(t *testing.T) {
	// Memory R; Ins derives {a,b}, Del derives {b,c}.
	// Old R = {b, c, d}.
	// (Ins\Del)={a}; (Ins∩Del∩old)={b}; old\(Ins∪Del)={d}.
	// New R = {a, b, d}.
	ins := query.NewFunc("ins", 1, nil, true, func(*fact.Instance) (*fact.Relation, error) {
		r := fact.NewRelation(1)
		r.Add(fact.Tuple{"a"})
		r.Add(fact.Tuple{"b"})
		return r, nil
	})
	del := query.NewFunc("del", 1, nil, true, func(*fact.Instance) (*fact.Relation, error) {
		r := fact.NewRelation(1)
		r.Add(fact.Tuple{"b"})
		r.Add(fact.Tuple{"c"})
		return r, nil
	})
	tr := NewBuilder("upd", fact.Schema{}).
		Mem("R", 1).
		Ins("R", ins).
		Del("R", del).
		Out(0, nil).
		MustBuild()

	state := fact.FromFacts(ff("R", "b"), ff("R", "c"), ff("R", "d"))
	eff, err := tr.Step(state, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := eff.State.Relation("R")
	want := fact.NewRelation(1)
	want.Add(fact.Tuple{"a"})
	want.Add(fact.Tuple{"b"})
	want.Add(fact.Tuple{"d"})
	if !got.Equal(want) {
		t.Errorf("R = %v, want %v", got, want)
	}
}

func TestAssignmentIdiom(t *testing.T) {
	// R := Q expressed as Ins=Q, Del=R (noted after the update formula
	// in §2.1).
	q := fo.MustQuery("q", []string{"x"}, fo.AtomF("S", "x"))
	delR := fo.MustQuery("d", []string{"x"}, fo.AtomF("R", "x"))
	tr := NewBuilder("assign", fact.Schema{"S": 1}).
		Mem("R", 1).
		Ins("R", q).
		Del("R", delR).
		Out(0, nil).
		MustBuild()

	state := fact.FromFacts(ff("S", "a"), ff("R", "old1"), ff("R", "a"))
	eff, err := tr.Step(state, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := eff.State.Relation("R")
	// R := {a}: old1 deleted; a is in Ins∩Del∩old so kept.
	if got.Len() != 1 || !got.Contains(fact.Tuple{"a"}) {
		t.Errorf("R = %v", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	// Overlapping in/mem schemas rejected.
	s := Schema{In: fact.Schema{"R": 1}, Mem: fact.Schema{"R": 1}, Msg: fact.Schema{}}
	if err := s.Validate(); err == nil {
		t.Error("overlapping schemas accepted")
	}
	// Redeclaring a system relation rejected.
	s2 := Schema{In: fact.Schema{SysId: 1}, Mem: fact.Schema{}, Msg: fact.Schema{}}
	if err := s2.Validate(); err == nil {
		t.Error("redeclared system relation accepted")
	}
}

func TestNewRejectsBadQueries(t *testing.T) {
	in := fact.Schema{"S": 1}
	// Send query for undeclared message relation.
	_, err := New("bad", Schema{In: in, Msg: fact.Schema{}, Mem: fact.Schema{}},
		map[string]query.Query{"M": query.Empty{K: 1}}, nil, nil, nil)
	if err == nil {
		t.Error("undeclared message relation accepted")
	}
	// Arity mismatch.
	_, err = New("bad2", Schema{In: in, Msg: fact.Schema{"M": 2}, Mem: fact.Schema{}},
		map[string]query.Query{"M": query.Empty{K: 1}}, nil, nil, nil)
	if err == nil {
		t.Error("arity mismatch accepted")
	}
	// Query reading outside combined schema.
	q := fo.MustQuery("q", []string{"x"}, fo.AtomF("Zorp", "x"))
	_, err = New("bad3", Schema{In: in, Msg: fact.Schema{"M": 1}, Mem: fact.Schema{}},
		map[string]query.Query{"M": q}, nil, nil, nil)
	if err == nil {
		t.Error("out-of-schema read accepted")
	}
}

func TestSyntacticClasses(t *testing.T) {
	obliv := echoTransducer(t)
	if !obliv.Oblivious() || obliv.UsesId() || obliv.UsesAll() {
		t.Error("echo should be oblivious")
	}
	if !obliv.Inflationary() {
		t.Error("echo has no deletions: inflationary")
	}
	if !obliv.Monotone() {
		t.Error("echo uses positive queries: monotone")
	}

	// A transducer reading Id.
	idReader := NewBuilder("id", fact.Schema{"S": 1}).
		Msg("M", 1).
		Snd("M", fo.MustQuery("snd", []string{"x"}, fo.AtomF(SysId, "x"))).
		Out(0, nil).
		MustBuild()
	if idReader.Oblivious() || !idReader.UsesId() || idReader.UsesAll() {
		t.Error("id reader misclassified")
	}

	// A transducer with a real deletion is not inflationary.
	deleter := NewBuilder("del", fact.Schema{"S": 1}).
		Mem("R", 1).
		Del("R", fo.MustQuery("d", []string{"x"}, fo.AtomF("R", "x"))).
		Out(0, nil).
		MustBuild()
	if deleter.Inflationary() {
		t.Error("deleter misclassified inflationary")
	}
	// Explicit empty deletion query keeps it inflationary.
	emptyDel := NewBuilder("del2", fact.Schema{"S": 1}).
		Mem("R", 1).
		Del("R", query.Empty{K: 1}).
		Out(0, nil).
		MustBuild()
	if !emptyDel.Inflationary() {
		t.Error("empty deletion query should be inflationary")
	}

	// Negation makes it non-monotone.
	negOut := NewBuilder("neg", fact.Schema{"S": 1}).
		Out(0, fo.MustQuery("o", nil, fo.NotF(fo.ExistsF([]string{"x"}, fo.AtomF("S", "x"))))).
		MustBuild()
	if negOut.Monotone() {
		t.Error("negation misclassified monotone")
	}
}

func TestStepDoesNotMutateArguments(t *testing.T) {
	tr := echoTransducer(t)
	state := fact.FromFacts(ff("S", "a"))
	rcv := fact.FromFacts(ff("M", "z"))
	sBefore, rBefore := state.Clone(), rcv.Clone()
	if _, err := tr.Step(state, rcv); err != nil {
		t.Fatal(err)
	}
	if !state.Equal(sBefore) || !rcv.Equal(rBefore) {
		t.Error("Step mutated its arguments")
	}
}

func TestHeartbeatStep(t *testing.T) {
	// Step with nil received instance = heartbeat transition.
	tr := echoTransducer(t)
	state := fact.FromFacts(ff("S", "a"))
	eff, err := tr.Step(state, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Snd.HasFact(ff("M", "a")) {
		t.Error("heartbeat should still send")
	}
	if !eff.State.Equal(state) {
		t.Error("heartbeat with no messages should not change echo state")
	}
}
