package while

// Static monotonicity analysis of while-programs for the CALM analyzer
// (internal/sa), replacing the blanket "while is never monotone"
// verdict. The analysis tracks, per relation name, whether the
// relation's value at the current program point is provably a MONOTONE
// FUNCTION OF THE INPUT INSTANCE:
//
//   - before any assignment, every relation holds its input value —
//     the identity, which is monotone (so the assignment-free program,
//     i.e. the identity query on Out, is monotone);
//   - R := Q preserves the property when Q is a monotone query and
//     every relation it reads is currently monotone (composition of
//     monotone functions);
//   - a while-loop preserves ALL flags when (a) its condition is an
//     effectively positive sentence over currently-monotone relations
//     and (b) every body statement is an inflationary assignment
//     R := R ∪ Q — syntactically, an fo disjunction containing the
//     atom R(head vars) — whose target is currently monotone and whose
//     body is effectively positive over currently-monotone relations.
//     Soundness: for a fixed iteration count k each relation is a
//     monotone function of the input (induction via composition), and
//     inflationary bodies make values increase with k; hence on
//     J ⊇ I the store at step k dominates pointwise, the positive
//     condition stays true at least as long (k_J ≥ k_I), and the value
//     at exit on J contains the value at exit on I. Any loop outside
//     this shape demotes every relation its body assigns to unknown.
//
// The program is reported monotone when the output relation's flag
// survives to the end. The transitive-closure program stays unknown
// (its loop body computes a difference), which the soundness harness
// tracks as a completeness-gap specimen: semantically monotone,
// statically unprovable.

import (
	"fmt"
	"sort"

	"declnet/internal/fo"
	"declnet/internal/query"
)

// relFlag is the per-relation dataflow fact: is the relation's value a
// monotone function of the input at this program point, and why (not).
type relFlag struct {
	mono   bool
	reason string
}

func flagOf(flags map[string]relFlag, rel string) relFlag {
	if f, ok := flags[rel]; ok {
		return f
	}
	return relFlag{mono: true, reason: "relation " + rel + " still holds its input value"}
}

// assignedIn collects every relation assigned anywhere in the block,
// including under nested loops.
func assignedIn(stmts []Stmt, into map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case Assign:
			into[st.Rel] = true
		case While:
			assignedIn(st.Body, into)
		}
	}
}

// inflationaryOver reports whether the assignment has the shape
// R := R ∪ Q for an fo query — a disjunction (or single atom) with a
// disjunct that is exactly the atom R(v1,...,vk) over the head
// variables in order, so the result always contains the current value
// of R.
func inflationaryOver(st Assign) bool {
	q, ok := st.Q.(*fo.Query)
	if !ok {
		return false
	}
	isSelfAtom := func(f fo.Formula) bool {
		a, ok := f.(fo.Atom)
		if !ok || a.Rel != st.Rel || len(a.Terms) != len(q.Head) {
			return false
		}
		for i, t := range a.Terms {
			if v, isVar := t.(fo.Var); !isVar || v != q.Head[i] {
				return false
			}
		}
		return true
	}
	if isSelfAtom(q.Body) {
		return true
	}
	if or, ok := q.Body.(fo.Or); ok {
		for _, d := range or.Fs {
			if isSelfAtom(d) {
				return true
			}
		}
	}
	return false
}

// monoFlags runs the dataflow over the block, updating flags in place.
func monoFlags(stmts []Stmt, flags map[string]relFlag) {
	for _, s := range stmts {
		switch st := s.(type) {
		case Assign:
			flags[st.Rel] = assignFlag(st, flags)
		case While:
			if ok, why := loopPreserves(st, flags); !ok {
				assigned := map[string]bool{}
				assignedIn(st.Body, assigned)
				for rel := range assigned {
					flags[rel] = relFlag{reason: fmt.Sprintf(
						"relation %s assigned inside a loop that is not provably inflationary (%s)", rel, why)}
				}
			}
			// A qualifying loop preserves every flag: body-assigned
			// relations only ever grow from their (monotone) entry
			// values via monotone queries.
		}
	}
}

func assignFlag(st Assign, flags map[string]relFlag) relFlag {
	ev := query.ExplainMonotone(st.Q)
	if !ev.Monotone {
		why := "opaque query"
		if len(ev.Blockers) > 0 {
			why = ev.Blockers[0]
		}
		return relFlag{reason: fmt.Sprintf("assignment %s := ... uses a non-monotone query: %s", st.Rel, why)}
	}
	for _, r := range st.Q.Rels() {
		if f := flagOf(flags, r); !f.mono {
			return relFlag{reason: fmt.Sprintf(
				"assignment %s := ... reads %s, which is not provably monotone: %s", st.Rel, r, f.reason)}
		}
	}
	return relFlag{mono: true, reason: fmt.Sprintf(
		"relation %s assigned by a monotone query over monotone relations", st.Rel)}
}

// loopPreserves reports whether the loop provably preserves every
// monotonicity flag (the inflationary-loop rule above).
func loopPreserves(w While, flags map[string]relFlag) (bool, string) {
	condEv := fo.EffectivelyPositive(w.Cond)
	if !condEv.Monotone {
		return false, "loop condition is not effectively positive: " + condEv.Blockers[0]
	}
	for _, r := range fo.RelNames(w.Cond) {
		if f := flagOf(flags, r); !f.mono {
			return false, fmt.Sprintf("loop condition reads %s: %s", r, f.reason)
		}
	}
	for _, s := range w.Body {
		st, ok := s.(Assign)
		if !ok {
			return false, fmt.Sprintf("loop body contains %s", s)
		}
		if !inflationaryOver(st) {
			return false, fmt.Sprintf("body assignment to %s is not of the shape %s := %s ∪ ...",
				st.Rel, st.Rel, st.Rel)
		}
		if f := flagOf(flags, st.Rel); !f.mono {
			return false, fmt.Sprintf("loop grows %s from a non-monotone entry value: %s", st.Rel, f.reason)
		}
		q := st.Q.(*fo.Query)
		if ev := fo.EffectivelyPositive(q.Body); !ev.Monotone {
			return false, fmt.Sprintf("body assignment to %s is not effectively positive: %s",
				st.Rel, ev.Blockers[0])
		}
		for _, r := range q.Rels() {
			if f := flagOf(flags, r); !f.mono {
				return false, fmt.Sprintf("body assignment to %s reads %s: %s", st.Rel, r, f.reason)
			}
		}
	}
	return true, ""
}

// MonotoneEvidence implements query.MonotoneExplainable: the verdict
// of the per-relation dataflow on the output relation.
func (q Query) MonotoneEvidence() query.MonotoneEvidence {
	flags := map[string]relFlag{}
	monoFlags(q.P.Stmts, flags)
	out := flagOf(flags, q.P.Out)
	if out.mono {
		return query.MonotoneEvidence{Monotone: true, Reasons: []string{
			"output relation " + q.P.Out + " is a monotone function of the input: " + out.reason}}
	}
	return query.MonotoneEvidence{Blockers: []string{out.reason}}
}

// SyntacticallyMonotone implements query.Query via the dataflow
// analysis; see MonotoneEvidence.
func (q Query) SyntacticallyMonotone() bool { return q.MonotoneEvidence().Monotone }

// inputReads collects the relations whose INPUT value the block may
// read: reads occurring before definite assignment. Loop bodies are
// walked against a copy of the assigned set (the first iteration reads
// pre-loop values) and assignments under a loop are not definite after
// it (the loop may run zero times).
func inputReads(stmts []Stmt, assigned map[string]bool, reads map[string]string) {
	for _, s := range stmts {
		switch st := s.(type) {
		case Assign:
			for _, r := range st.Q.Rels() {
				if !assigned[r] {
					if _, ok := reads[r]; !ok {
						reads[r] = "read by assignment " + st.String()
					}
				}
			}
			assigned[st.Rel] = true
		case While:
			for _, r := range fo.RelNames(st.Cond) {
				if !assigned[r] {
					if _, ok := reads[r]; !ok {
						reads[r] = fmt.Sprintf("read by loop condition %s", st.Cond)
					}
				}
			}
			inner := map[string]bool{}
			for k, v := range assigned {
				inner[k] = v
			}
			inputReads(st.Body, inner, reads)
		}
	}
}

// inputRels returns the input relations the program depends on (sorted)
// with witness locations: relations read before definite assignment,
// plus the output relation when it is not definitely assigned (the
// program then outputs its input value).
func (q Query) inputRels() map[string]string {
	assigned := map[string]bool{}
	reads := map[string]string{}
	inputReads(q.P.Stmts, assigned, reads)
	if !assigned[q.P.Out] {
		if _, ok := reads[q.P.Out]; !ok {
			reads[q.P.Out] = "output relation, never definitely assigned"
		}
	}
	return reads
}

// Rels implements query.Query: the input relations the expressed query
// depends on. Unlike the pre-analysis version this excludes program
// variables that are definitely assigned before being read — the
// identity program on Out reports exactly {Out}.
func (q Query) Rels() []string {
	reads := q.inputRels()
	out := make([]string, 0, len(reads))
	for r := range reads {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// QueryDeps implements query.DepAnalyzable: every input read, positive
// when the whole program is provably monotone (monotone in the input
// implies monotone in each read relation), guard-polarity otherwise
// (assignment can invert or erase any dependency).
func (q Query) QueryDeps() []query.Dep {
	pol := query.PolGuard
	if q.MonotoneEvidence().Monotone {
		pol = query.PolPos
	}
	reads := q.inputRels()
	rels := make([]string, 0, len(reads))
	for r := range reads {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	deps := make([]query.Dep, 0, len(rels))
	for _, r := range rels {
		deps = append(deps, query.Dep{Rel: r, Polarity: pol, Branch: -1, Where: reads[r]})
	}
	return deps
}
