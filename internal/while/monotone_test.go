package while

import (
	"sort"
	"testing"

	"declnet/internal/fact"
	"declnet/internal/fo"
	"declnet/internal/query"
)

// TestAssignmentFreeIsMonotone: the empty program expresses the
// identity query on Out — monotone, and its only input relation is
// Out itself.
func TestAssignmentFreeIsMonotone(t *testing.T) {
	q := Query{P: MustNew("S", 1)}
	if !q.SyntacticallyMonotone() {
		t.Fatal("assignment-free program must be monotone (identity query)")
	}
	if rels := q.Rels(); len(rels) != 1 || rels[0] != "S" {
		t.Fatalf("Rels = %v, want [S]", rels)
	}
	// And it really is the identity.
	out, err := q.Eval(fact.FromFacts(ff("S", "a"), ff("T", "b")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Contains(fact.Tuple{"a"}) {
		t.Fatalf("out = %v", out)
	}
}

// TestStraightLineMonotone: a chain of monotone assignments composes.
func TestStraightLineMonotone(t *testing.T) {
	p := MustNew("Ans", 1,
		Assign{Rel: "Mid", Q: fo.MustQuery("m", []string{"x"}, fo.AtomF("E", "x"))},
		Assign{Rel: "Ans", Q: fo.MustQuery("a", []string{"x"}, fo.AtomF("Mid", "x"))},
	)
	q := Query{P: p}
	if !q.SyntacticallyMonotone() {
		t.Fatalf("straight-line monotone composition rejected: %+v", q.MonotoneEvidence().Blockers)
	}
	if rels := q.Rels(); len(rels) != 1 || rels[0] != "E" {
		t.Fatalf("Rels = %v, want [E] (Mid and Ans are program variables)", rels)
	}
}

// TestNonMonotoneAssignmentDemotes: reading through negation blocks
// the chain, and the evidence names the position.
func TestNonMonotoneAssignmentDemotes(t *testing.T) {
	p := MustNew("Ans", 1,
		Assign{Rel: "Ans", Q: fo.MustQuery("a", []string{"x"},
			fo.AndF(fo.AtomF("E", "x"), fo.NotF(fo.AtomF("F", "x"))))},
	)
	q := Query{P: p}
	ev := q.MonotoneEvidence()
	if ev.Monotone {
		t.Fatal("negation must block the proof")
	}
	if len(ev.Blockers) == 0 {
		t.Fatal("negative verdict must carry blockers")
	}
}

// TestInflationaryLoopAccepted: T := T ∪ step(T) under a positive
// condition is monotone — the loop only grows T from a monotone seed.
func TestInflationaryLoopAccepted(t *testing.T) {
	grow := fo.MustQuery("g", []string{"x"},
		fo.OrF(
			fo.AtomF("T", "x"),
			fo.ExistsF([]string{"y"}, fo.AndF(fo.AtomF("T", "y"), fo.AtomF("E", "y", "x"))),
		))
	p := MustNew("T", 1,
		Assign{Rel: "T", Q: fo.MustQuery("seed", []string{"x"}, fo.AtomF("S", "x"))},
		While{
			Cond: fo.ExistsF([]string{"x"}, fo.AtomF("T", "x")),
			Body: []Stmt{Assign{Rel: "T", Q: grow}},
		},
	)
	q := Query{P: p}
	if !q.SyntacticallyMonotone() {
		t.Fatalf("inflationary loop rejected: %+v", q.MonotoneEvidence().Blockers)
	}
}

// TestTransitiveClosureStaysUnknown: the classic TC program computes a
// monotone query but its loop body takes a difference — the analyzer
// must NOT claim monotonicity (tracked completeness gap), matching the
// pre-analyzer behaviour of the adapter.
func TestTransitiveClosureStaysUnknown(t *testing.T) {
	q := Query{P: tcProgram(t)}
	if q.SyntacticallyMonotone() {
		t.Fatal("TC's difference-taking loop must stay unproved")
	}
}

// TestRelsLoopSemantics: a relation read by a loop body before the
// loop assigns it is an input; assignments inside a loop are not
// definite after it.
func TestRelsLoopSemantics(t *testing.T) {
	p := MustNew("Out", 1,
		While{
			Cond: fo.ExistsF([]string{"x"}, fo.AtomF("C", "x")),
			Body: []Stmt{
				Assign{Rel: "A", Q: fo.MustQuery("a", []string{"x"}, fo.AtomF("B", "x"))},
				Assign{Rel: "B", Q: fo.MustQuery("b", []string{"x"}, fo.AtomF("A", "x"))},
			},
		},
	)
	q := Query{P: p}
	rels := q.Rels()
	sort.Strings(rels)
	// C (condition), B (read before assignment in the first
	// iteration), Out (never definitely assigned). A is assigned
	// before the body reads it.
	want := []string{"B", "C", "Out"}
	if len(rels) != len(want) {
		t.Fatalf("Rels = %v, want %v", rels, want)
	}
	for i := range want {
		if rels[i] != want[i] {
			t.Fatalf("Rels = %v, want %v", rels, want)
		}
	}
}

// TestQueryDepsPolarity: monotone program → positive deps; unproved
// program → guard deps.
func TestQueryDepsPolarity(t *testing.T) {
	mono := Query{P: MustNew("S", 1)}
	for _, d := range mono.QueryDeps() {
		if d.Polarity != query.PolPos {
			t.Errorf("monotone program dep %s: polarity %s, want +", d.Rel, d.Polarity)
		}
	}
	tc := Query{P: tcProgram(t)}
	for _, d := range tc.QueryDeps() {
		if d.Polarity != query.PolGuard {
			t.Errorf("unproved program dep %s: polarity %s, want ?", d.Rel, d.Polarity)
		}
	}
}
