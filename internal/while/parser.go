package while

import (
	"fmt"
	"strconv"
	"strings"

	"declnet/internal/fo"
)

// Parse parses a textual while-program:
//
//	T(x, y) := E(x, y);
//	D(x, y) := E(x, y);
//	while exists x, y D(x, y) {
//	    N(x, y) := T(x, y) | exists z (T(x, z) & T(z, y));
//	    D(x, y) := N(x, y) & !T(x, y);
//	    T(x, y) := N(x, y);
//	}
//	output T/2
//
// Assignments take an FO formula in the syntax of fo.Parse (the head
// variables are the assigned relation's columns); loop conditions are
// FO sentences; `output REL/ARITY` designates the answer. Lines
// beginning with # are comments.
func Parse(src string) (*Program, error) {
	var lines []string
	for _, l := range strings.Split(src, "\n") {
		if t := strings.TrimSpace(l); !strings.HasPrefix(t, "#") {
			lines = append(lines, l)
		}
	}
	p := &whileParser{src: strings.Join(lines, "\n")}
	stmts, err := p.block(false)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), "output") {
		return nil, fmt.Errorf("while: missing `output REL/ARITY` directive")
	}
	p.i += len("output")
	p.skipSpace()
	spec := strings.TrimSpace(p.rest())
	rel, arStr, ok := strings.Cut(spec, "/")
	if !ok {
		return nil, fmt.Errorf("while: malformed output directive %q", spec)
	}
	arity, err := strconv.Atoi(strings.TrimSpace(arStr))
	if err != nil || arity < 0 {
		return nil, fmt.Errorf("while: bad output arity %q", arStr)
	}
	return New(strings.TrimSpace(rel), arity, stmts...)
}

// MustParse is Parse panicking on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type whileParser struct {
	src string
	i   int
}

func (p *whileParser) rest() string { return p.src[p.i:] }

func (p *whileParser) skipSpace() {
	for p.i < len(p.src) {
		switch p.src[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// block parses statements until EOF, the output directive (nested ==
// false), or a closing brace (nested == true, consumed).
func (p *whileParser) block(nested bool) ([]Stmt, error) {
	var stmts []Stmt
	for {
		p.skipSpace()
		r := p.rest()
		switch {
		case r == "" || strings.HasPrefix(r, "output"):
			if nested {
				return nil, fmt.Errorf("while: unterminated loop body")
			}
			return stmts, nil
		case strings.HasPrefix(r, "}"):
			if !nested {
				return nil, fmt.Errorf("while: unexpected }")
			}
			p.i++
			return stmts, nil
		case strings.HasPrefix(r, "while"):
			p.i += len("while")
			open := strings.IndexByte(p.rest(), '{')
			if open < 0 {
				return nil, fmt.Errorf("while: loop without body")
			}
			condSrc := p.rest()[:open]
			cond, err := fo.Parse(condSrc)
			if err != nil {
				return nil, fmt.Errorf("while: loop condition %q: %w", strings.TrimSpace(condSrc), err)
			}
			p.i += open + 1
			body, err := p.block(true)
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, While{Cond: cond, Body: body})
		default:
			semi := strings.IndexByte(r, ';')
			if semi < 0 {
				return nil, fmt.Errorf("while: statement without terminating ';' near %q", truncate(r))
			}
			q, err := fo.ParseQuery(r[:semi])
			if err != nil {
				return nil, fmt.Errorf("while: assignment %q: %w", truncate(r[:semi]), err)
			}
			p.i += semi + 1
			stmts = append(stmts, Assign{Rel: q.Name, Q: q})
		}
	}
}

func truncate(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
