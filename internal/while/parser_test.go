package while

import (
	"errors"
	"testing"

	"declnet/internal/fact"
)

const tcSrc = `
# transitive closure via while-change
T(x, y) := E(x, y);
D(x, y) := E(x, y);
while exists x, y D(x, y) {
    N(x, y) := T(x, y) | exists z (T(x, z) & T(z, y));
    D(x, y) := N(x, y) & !T(x, y);
    T(x, y) := N(x, y);
}
output T/2
`

func TestParseAndRunTC(t *testing.T) {
	p := MustParse(tcSrc)
	q := Query{P: p}
	out, err := q.Eval(fact.FromFacts(
		ff("E", "a", "b"), ff("E", "b", "c"), ff("E", "c", "d"),
	))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 || !out.Contains(fact.Tuple{"a", "d"}) {
		t.Errorf("out = %v", out)
	}
}

func TestParsedEqualsHandBuilt(t *testing.T) {
	parsed := Query{P: MustParse(tcSrc)}
	// Compare against the hand-built program from while_test.go on a
	// couple of instances.
	instances := []*fact.Instance{
		fact.FromFacts(ff("E", "a", "b"), ff("E", "b", "a")),
		fact.FromFacts(ff("E", "x", "x")),
		fact.NewInstance(),
	}
	hand := Query{P: tcProgramForParserTest(t)}
	for _, I := range instances {
		a, err := parsed.Eval(I)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hand.Eval(I)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("parsed %v != hand-built %v on %v", a, b, I)
		}
	}
}

// tcProgramForParserTest mirrors the construction in while_test.go.
func tcProgramForParserTest(t *testing.T) *Program {
	t.Helper()
	return tcProgram(t)
}

func TestParseNestedLoops(t *testing.T) {
	p := MustParse(`
Flag() := exists x S(x);
while Flag() {
    while Flag() {
        Flag() := false;
    }
}
Done() := true;
output Done/0
`)
	out, err := p.Run(fact.FromFacts(ff("S", "go")))
	if err != nil {
		t.Fatal(err)
	}
	if out.RelationOr("Done", 0).Len() != 1 {
		t.Error("Done not derived")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`T(x) := S(x);`,                                  // no output directive
		`T(x) := S(x); output T`,                         // malformed directive
		`T(x) := S(x) output T/1`,                        // missing semicolon
		`while exists x S(x) { T(x) := S(x); output T/1`, // unterminated loop
		`} output T/1`,                                   // stray brace
		`T(x) := S(y); output T/1`,                       // unsafe assignment
		`while S(x) { T(x) := S(x); } output T/1`,        // open loop condition
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsedDivergenceDetected(t *testing.T) {
	p := MustParse(`
while true {
    T(x) := S(x);
}
output T/1
`)
	_, err := p.Run(fact.FromFacts(ff("S", "a")))
	if !errors.Is(err, ErrNonTerminating) {
		t.Fatalf("err = %v", err)
	}
}
