// Package while implements the query language "while" of the paper
// (§2): first-order logic extended with relation assignment statements
// and while-loops. While-programs express exactly the queries
// computable by an FO-transducer on a single-node network (Lemma 5(3))
// and, distributedly, by FO-transducers on arbitrary networks
// (Theorem 6(3)).
//
// Programs operate on a store: the input instance plus program
// variables (relation names assigned by the program). Since a while
// program over a fixed input can only reach finitely many stores
// (queries cannot invent data elements), nontermination manifests as a
// repeated store at a loop head; Run detects this with the
// Abiteboul–Simon technique and reports ErrNonTerminating, making the
// partiality of while-computable queries concrete.
package while

import (
	"errors"
	"fmt"

	"declnet/internal/fact"
	"declnet/internal/fo"
	"declnet/internal/query"
)

// ErrNonTerminating is returned by Run when a while-loop repeats a
// store state, i.e. the program diverges on the given input and the
// expressed partial query is undefined there.
var ErrNonTerminating = errors.New("while: program does not terminate on this input")

// Stmt is a while-program statement.
type Stmt interface {
	isStmt()
	String() string
}

// Assign is the statement Rel := Q, overwriting relation Rel in the
// store with the result of evaluating Q on the current store.
type Assign struct {
	Rel string
	Q   query.Query
}

// While is the statement "while Cond do Body", with Cond an FO
// sentence evaluated on the current store.
type While struct {
	Cond fo.Formula
	Body []Stmt
}

func (Assign) isStmt() {}
func (While) isStmt()  {}

func (a Assign) String() string { return fmt.Sprintf("%s := <query/%d>", a.Rel, a.Q.Arity()) }
func (w While) String() string {
	return fmt.Sprintf("while %s do { %d statements }", w.Cond, len(w.Body))
}

// Program is a while-program with a designated output relation.
type Program struct {
	Stmts []Stmt
	// Out is the relation holding the answer when the program halts.
	Out string
	// OutArity is the arity of the output relation.
	OutArity int
}

// New builds a program; the condition of every while-loop must be a
// sentence (no free variables).
func New(out string, outArity int, stmts ...Stmt) (*Program, error) {
	var check func([]Stmt) error
	check = func(ss []Stmt) error {
		for _, s := range ss {
			if w, ok := s.(While); ok {
				if fv := fo.FreeVars(w.Cond); len(fv) != 0 {
					return fmt.Errorf("while: loop condition %s has free variables %v", w.Cond, fv)
				}
				if err := check(w.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := check(stmts); err != nil {
		return nil, err
	}
	return &Program{Stmts: stmts, Out: out, OutArity: outArity}, nil
}

// MustNew is New panicking on error.
func MustNew(out string, outArity int, stmts ...Stmt) *Program {
	p, err := New(out, outArity, stmts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Run executes the program on the input instance and returns the final
// store. It returns ErrNonTerminating when a loop repeats a store.
func (p *Program) Run(input *fact.Instance) (*fact.Instance, error) {
	store := input.Clone()
	if err := runBlock(p.Stmts, store); err != nil {
		return nil, err
	}
	return store, nil
}

func runBlock(stmts []Stmt, store *fact.Instance) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case Assign:
			r, err := st.Q.Eval(store)
			if err != nil {
				return fmt.Errorf("while: assignment to %s: %w", st.Rel, err)
			}
			store.SetRelation(st.Rel, r)
		case While:
			seen := map[string]bool{}
			for {
				ok, err := fo.Holds(st.Cond, store)
				if err != nil {
					return fmt.Errorf("while: condition %s: %w", st.Cond, err)
				}
				if !ok {
					break
				}
				// Abiteboul–Simon loop detection: the store determines
				// all future behaviour, so a repeat means divergence.
				key := store.String()
				if seen[key] {
					return ErrNonTerminating
				}
				seen[key] = true
				if err := runBlock(st.Body, store); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("while: unknown statement %T", s)
		}
	}
	return nil
}

// Query adapts the program to query.Query: the expressed (partial)
// query maps an input instance to the output relation of the halted
// program, and is undefined (error) on inputs where the program
// diverges.
type Query struct{ P *Program }

// Arity implements query.Query.
func (q Query) Arity() int { return q.P.OutArity }

// Eval implements query.Query.
func (q Query) Eval(I *fact.Instance) (*fact.Relation, error) {
	store, err := q.P.Run(I)
	if err != nil {
		return nil, err
	}
	return store.RelationOr(q.P.Out, q.P.OutArity).Clone(), nil
}
