package while

import (
	"errors"
	"testing"

	"declnet/internal/fact"
	"declnet/internal/fo"
)

func ff(rel string, args ...fact.Value) fact.Fact { return fact.NewFact(rel, args...) }

// tcProgram builds the classic while-program for transitive closure:
//
//	T := E; D := E
//	while ∃x,y D(x,y):
//	    N := T ∪ (T∘T)
//	    D := N \ T
//	    T := N
func tcProgram(t *testing.T) *Program {
	t.Helper()
	tUnionComp := fo.MustQuery("n", []string{"x", "y"},
		fo.OrF(
			fo.AtomF("T", "x", "y"),
			fo.ExistsF([]string{"z"}, fo.AndF(fo.AtomF("T", "x", "z"), fo.AtomF("T", "z", "y"))),
		))
	diff := fo.MustQuery("d", []string{"x", "y"},
		fo.AndF(fo.AtomF("N", "x", "y"), fo.NotF(fo.AtomF("T", "x", "y"))))
	copyE := fo.MustQuery("c", []string{"x", "y"}, fo.AtomF("E", "x", "y"))

	return MustNew("T", 2,
		Assign{Rel: "T", Q: copyE},
		Assign{Rel: "D", Q: copyE},
		While{
			Cond: fo.ExistsF([]string{"x", "y"}, fo.AtomF("D", "x", "y")),
			Body: []Stmt{
				Assign{Rel: "N", Q: tUnionComp},
				Assign{Rel: "D", Q: diff},
				Assign{Rel: "T", Q: tUnionComp},
			},
		},
	)
}

func TestTransitiveClosure(t *testing.T) {
	p := tcProgram(t)
	in := fact.FromFacts(ff("E", "a", "b"), ff("E", "b", "c"), ff("E", "c", "d"))
	out, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	tc := out.Relation("T")
	if tc.Len() != 6 {
		t.Fatalf("T = %v", tc)
	}
	if !tc.Contains(fact.Tuple{"a", "d"}) {
		t.Error("missing (a,d)")
	}
}

func TestQueryAdapter(t *testing.T) {
	q := Query{P: tcProgram(t)}
	if q.Arity() != 2 {
		t.Errorf("arity = %d", q.Arity())
	}
	out, err := q.Eval(fact.FromFacts(ff("E", "a", "b"), ff("E", "b", "a")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Errorf("out = %v", out)
	}
	rels := q.Rels()
	found := false
	for _, r := range rels {
		if r == "E" {
			found = true
		}
	}
	if !found {
		t.Errorf("Rels = %v, want E included", rels)
	}
	if q.SyntacticallyMonotone() {
		t.Error("while query should not claim syntactic monotonicity")
	}
}

func TestNonTerminationDetected(t *testing.T) {
	// while true do T := T  — store never changes: divergence.
	idQ := fo.MustQuery("id", []string{"x"}, fo.AtomF("T", "x"))
	p := MustNew("T", 1,
		While{Cond: fo.Truth{Val: true}, Body: []Stmt{Assign{Rel: "T", Q: idQ}}},
	)
	_, err := p.Run(fact.FromFacts(ff("T", "a")))
	if !errors.Is(err, ErrNonTerminating) {
		t.Fatalf("err = %v, want ErrNonTerminating", err)
	}
}

func TestOscillationDetected(t *testing.T) {
	// Flip-flop: while true do T := adom \ T. Period-2 oscillation
	// must be detected, not loop forever.
	complement := fo.MustQuery("c", []string{"x"}, fo.NotF(fo.AtomF("T", "x")))
	p := MustNew("T", 1,
		While{Cond: fo.Truth{Val: true}, Body: []Stmt{Assign{Rel: "T", Q: complement}}},
	)
	_, err := p.Run(fact.FromFacts(ff("S", "a"), ff("S", "b"), ff("T", "a")))
	if !errors.Is(err, ErrNonTerminating) {
		t.Fatalf("err = %v, want ErrNonTerminating", err)
	}
}

func TestLoopConditionMustBeSentence(t *testing.T) {
	if _, err := New("T", 1, While{Cond: fo.AtomF("S", "x")}); err == nil {
		t.Fatal("open loop condition accepted")
	}
}

func TestNestedLoops(t *testing.T) {
	// Outer loop runs while Flag nonempty; inner loop clears Flag via
	// a terminating count-down through relation erasure.
	empty := fo.MustQuery("e", []string{"x"}, fo.Truth{Val: false})
	p := MustNew("Done", 0,
		While{
			Cond: fo.ExistsF([]string{"x"}, fo.AtomF("Flag", "x")),
			Body: []Stmt{
				While{
					Cond: fo.ExistsF([]string{"x"}, fo.AtomF("Flag", "x")),
					Body: []Stmt{Assign{Rel: "Flag", Q: empty}},
				},
			},
		},
		Assign{Rel: "Done", Q: fo.MustQuery("d", nil, fo.Truth{Val: true})},
	)
	out, err := p.Run(fact.FromFacts(ff("Flag", "go")))
	if err != nil {
		t.Fatal(err)
	}
	if out.RelationOr("Done", 0).Len() != 1 {
		t.Error("Done not set")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	p := tcProgram(t)
	in := fact.FromFacts(ff("E", "a", "b"))
	before := in.Clone()
	if _, err := p.Run(in); err != nil {
		t.Fatal(err)
	}
	if !in.Equal(before) {
		t.Error("Run mutated its input")
	}
}

func TestWhileExpressesNonMonotoneQuery(t *testing.T) {
	// Emptiness of S: not monotone, easily in while (even in FO).
	emptiness := fo.MustQuery("ans", nil, fo.NotF(fo.ExistsF([]string{"x"}, fo.AtomF("S", "x"))))
	p := MustNew("Ans", 0, Assign{Rel: "Ans", Q: emptiness})
	q := Query{P: p}

	out, err := q.Eval(fact.FromFacts(ff("T", "a")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Error("emptiness should hold")
	}
	out, err = q.Eval(fact.FromFacts(ff("S", "a")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("emptiness should fail")
	}
}
