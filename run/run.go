// Package run places transducers on networks and executes them: the
// distributed operational semantics of §3 and the run helpers of §4.
//
// A typical session builds a topology, partitions an input instance
// over its nodes, and drives a fair run to a quiescence point:
//
//	net := run.Ring(4)
//	part := run.RoundRobinSplit(I, net)
//	out, err := run.ToQuiescence(net, tr, part, run.Options{Seed: 42})
//
// Setting Options.Workers > 0 executes the run on the parallel
// sharded runtime instead of the sequential scheduler loop: every
// node fires once per round, concurrently on a worker pool, with
// cross-node effects merged at a barrier in stable node order. The
// trajectory is a function of the seed alone — Workers only changes
// wall-clock time — and every parallel run is a fair run of the
// paper's interleaved semantics (rounds of disjoint single-node
// transitions commute into an interleaving).
//
// Setting Options.Channel to a scenario spec ("lossy:25", "dup:25",
// "partition:64", "crash:0@40") swaps the paper's fair-lossless
// channel for an adversarial one: messages may be dropped,
// redelivered, parked at severed partition links, or nodes may
// crash and restart from their persisted relations. Every scenario
// is deterministic per (seed, scenario) in both runtimes.
//
// For finer control (tracing, custom schedulers, per-step inspection)
// build a *Sim with NewSim and drive it yourself; Sim.RunParallel
// (see ParallelOptions) is the round-based counterpart of Sim.Run.
package run

import (
	icalm "declnet/internal/calm"
	ichannel "declnet/internal/channel"
	idist "declnet/internal/dist"
	ifact "declnet/internal/fact"
	inetwork "declnet/internal/network"
	iregistry "declnet/internal/registry"
	itransducer "declnet/internal/transducer"
)

// Networks: finite connected undirected graphs whose vertices are
// data elements (§3).
type Network = inetwork.Network

// NewNetwork builds a network from nodes and undirected edges,
// validating connectivity and rejecting self-loops.
func NewNetwork(nodes []ifact.Value, edges [][2]ifact.Value) (*Network, error) {
	return inetwork.NewNetwork(nodes, edges)
}

// MustNetwork is NewNetwork panicking on error.
func MustNetwork(nodes []ifact.Value, edges [][2]ifact.Value) *Network {
	return inetwork.MustNetwork(nodes, edges)
}

// Single returns the one-node network.
func Single() *Network { return inetwork.Single() }

// Line returns the path network on k nodes.
func Line(k int) *Network { return inetwork.Line(k) }

// Ring returns the cycle network on k nodes.
func Ring(k int) *Network { return inetwork.Ring(k) }

// Star returns the star network on k nodes with n1 as the hub.
func Star(k int) *Network { return inetwork.Star(k) }

// Complete returns the complete network on k nodes.
func Complete(k int) *Network { return inetwork.Complete(k) }

// RandomConnected returns a random connected network on k nodes,
// deterministic per seed.
func RandomConnected(k, extraEdges int, seed int64) *Network {
	return inetwork.RandomConnected(k, extraEdges, seed)
}

// Topologies returns the standard topology zoo: one network of each
// shape (line, ring, star, complete, random) with roughly k nodes.
func Topologies(k int) map[string]*Network { return inetwork.Topologies(k) }

// ParseTopology parses a topology spec "shape:size" (e.g. "line:4",
// "ring:3", "star:5", "complete:4", "random:6", "single").
func ParseTopology(spec string) (*Network, error) { return iregistry.ParseTopology(spec) }

// Partitions: horizontal distributions of an input instance over the
// nodes of a network (§4).
type Partition = idist.Partition

// RoundRobinSplit distributes the facts of I over the nodes one at a
// time in deterministic order.
func RoundRobinSplit(I *ifact.Instance, net *Network) Partition {
	return idist.RoundRobinSplit(I, net)
}

// ReplicateAll places a full copy of I at every node.
func ReplicateAll(I *ifact.Instance, net *Network) Partition {
	return idist.ReplicateAll(I, net)
}

// AllAtNode places the whole instance at the single node v.
func AllAtNode(I *ifact.Instance, v ifact.Value) Partition { return idist.AllAtNode(I, v) }

// RandomSplit assigns each fact to a uniformly random node,
// deterministic per seed.
func RandomSplit(I *ifact.Instance, net *Network, seed int64) Partition {
	return idist.RandomSplit(I, net, seed)
}

// SplitByRelation assigns each input relation wholly to one node,
// cycling through the nodes — the partition family whose witnesses
// matter for the §5 coordination-freeness subtleties.
func SplitByRelation(I *ifact.Instance, net *Network) Partition {
	return icalm.SplitByRelation(I, net)
}

// ParsePartition builds the named partition of I over the network:
// "roundrobin", "replicate", "first" (everything at the first node),
// "byrelation", or "random:SEED".
func ParsePartition(spec string, I *ifact.Instance, net *Network) (Partition, error) {
	return iregistry.ParsePartition(spec, I, net)
}

// Simulation: mutable configurations, transitions, schedulers,
// quiescence detection (Proposition 1).
type (
	// Sim is a running transducer network: a state per node, a
	// multiset message buffer per node, and the accumulated output.
	Sim = inetwork.Sim
	// Result summarizes a run: output, quiescence flag, step and
	// message counts.
	Result = inetwork.RunResult
	// TraceEvent describes one executed transition.
	TraceEvent = inetwork.TraceEvent
	// Scheduler chooses the next transition of a run; implementations
	// must be fair in the limit.
	Scheduler = inetwork.Scheduler
	// Event is a scheduled transition.
	Event = inetwork.Event
	// ParallelOptions configures Sim.RunParallel, the parallel sharded
	// runtime: nodes fire concurrently in rounds on a worker pool,
	// with per-node PCG streams and a merge barrier in stable node
	// order. Runs are bit-identical for every Workers setting — the
	// worker count changes wall-clock time only. Options.Workers > 0
	// selects the same runtime through ToQuiescence.
	ParallelOptions = inetwork.ParallelOptions
)

// NewRandomScheduler returns the seeded fair random scheduler.
func NewRandomScheduler(seed int64) Scheduler { return inetwork.NewRandomScheduler(seed) }

// NewRoundRobinFIFO returns the round-robin FIFO scheduler: cyclic
// node visits, oldest message first.
func NewRoundRobinFIFO() Scheduler { return inetwork.NewRoundRobinFIFO() }

// NewLIFODelay returns a scheduler that delivers newest-first with
// heartbeat gaps, modelling message reordering.
func NewLIFODelay(seed int64, delay int) Scheduler { return inetwork.NewLIFODelay(seed, delay) }

// NewHeartbeatOnly returns the scheduler that never delivers
// messages; it drives the coordination-freeness witness runs of §5.
func NewHeartbeatOnly() Scheduler { return inetwork.NewHeartbeatOnly() }

// Channel models and fault scenarios: the pluggable delivery layer.
// A ChannelModel owns which buffered messages are deliverable,
// droppable or duplicable at each step, which links are severed, and
// which nodes crash; Sim.SetChannel binds one, or set Options.Channel
// to a scenario spec and let NewSim bind it. The default (no model)
// is the paper's fair-lossless §3 channel on a zero-overhead fast
// path, bit-identical to runs recorded before the channel layer
// existed.
type (
	// ChannelModel decides the fate of buffered messages each step.
	ChannelModel = ichannel.Model
	// ChannelScenario is a named, parameterized channel-model family:
	// a factory producing a fresh model per run, deterministic per
	// (seed, scenario).
	ChannelScenario = ichannel.Scenario
	// ChannelDecision is a model's verdict for one node at one step.
	ChannelDecision = ichannel.Decision
	// CrashEvent schedules one crash/restart: node (index into the
	// sorted node order) crashes when the step counter reaches Step.
	CrashEvent = ichannel.CrashEvent
)

// FairLossless returns the default channel model: arbitrary-order,
// fair, lossless delivery.
func FairLossless() ChannelModel { return ichannel.FairLossless() }

// LossyFair returns a fair-but-lossy channel dropping each chosen
// delivery with probability pct/100; senders recover by
// retransmission, so every fact still gets through eventually.
func LossyFair(seed int64, pct int) ChannelModel { return ichannel.LossyFair(seed, pct) }

// Duplicating returns an at-least-once channel that redelivers each
// chosen message with probability pct/100.
func Duplicating(seed int64, pct int) ChannelModel { return ichannel.Duplicating(seed, pct) }

// PartitionChannel returns the epoch-alternating network partition:
// links between the two halves of the node set are severed during
// even epochs of epochLen steps and heal during odd ones; held
// messages are released at the heal. nodes must be the Size() of the
// network the model is bound to — a mismatched count splits at the
// wrong boundary, and nodes < 2 degrades to the fair channel (a
// one-node network cannot be partitioned). Prefer Options.Channel
// ("partition:EPOCH"), which passes the node count automatically.
func PartitionChannel(epochLen, nodes int) ChannelModel { return ichannel.Partition(epochLen, nodes) }

// CrashRestart returns the crash/restart channel: scheduled nodes
// lose their buffer and volatile state but keep the Dedalus-style
// persisted relations (input fragment, Id, All).
func CrashRestart(schedule []CrashEvent) ChannelModel { return ichannel.CrashRestart(schedule) }

// ChannelScenarios returns the recognized channel scenario spec
// templates, sorted.
func ChannelScenarios() []string { return iregistry.ChannelScenarios() }

// DescribeChannelScenarios returns "template — description" lines for
// the channel scenarios, for CLI listings.
func DescribeChannelScenarios() []string { return iregistry.DescribeChannelScenarios() }

// ParseChannel resolves a channel scenario spec ("fair", "lossy:25",
// "dup:25", "partition:64", "crash:0@40"); unknown names list the
// available scenarios.
func ParseChannel(spec string) (ChannelScenario, error) { return iregistry.ParseChannel(spec) }

// Options configures a run.
type Options = idist.RunOptions

// Dict is the interning-dictionary handle Options.Dict accepts: a
// per-run value universe. A run executed with Options{Dict: run.NewDict()}
// re-encodes its partition fragments into the dictionary on ingress
// and interns every run-local value there; dropping every handle
// after the run (sim, output, options) makes the run's universe
// collectable. Leaving Options.Dict nil keeps the process-default
// dictionary — the historical process-wide ID space.
type Dict = ifact.Dict

// NewDict returns a fresh per-run interning dictionary for
// Options.Dict.
func NewDict() *Dict { return ifact.NewDict() }

// NewSim builds the initial configuration of the transducer network
// (net, tr) on the given partition: node v starts with its fragment,
// Id(v), All, empty memory and an empty buffer.
func NewSim(net *Network, tr *itransducer.Transducer, p Partition, opt Options) (*Sim, error) {
	return idist.NewSim(net, tr, p, opt)
}

// ToQuiescence drives one fair run to a quiescence point
// (Proposition 1) and returns the accumulated output out(ρ). It is an
// error if the step budget is exhausted first.
func ToQuiescence(net *Network, tr *itransducer.Transducer, p Partition, opt Options) (*ifact.Relation, error) {
	return idist.RunToQuiescence(net, tr, p, opt)
}

// Explain renders the compiled physical query plan of every query of
// the transducer (send, insert, delete, output): the chosen join
// order, index-probe columns, filter and guard placement, and the
// delta-pinned variants semi-naive firing uses. Every FO, Datalog and
// algebra query evaluates through these plans — compiled once per
// query, cached (sync.Once-guarded per delta pin, safe under the
// parallel runtime's worker pool), and executed over dense register
// slots. The rendering is stable: diff it across commits to catch
// plan regressions (cmd/transduce -explain prints it).
func Explain(tr *itransducer.Transducer) string { return itransducer.ExplainPlans(tr) }
