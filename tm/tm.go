// Package tm exposes the Turing machines and word structures of §8:
// a small machine model with a library of example machines, and the
// word-structure encoding that feeds machines to the Dedalus compiler
// (declnet/dedalus.CompileTM).
package tm

import (
	ifact "declnet/internal/fact"
	itm "declnet/internal/tm"
)

type (
	// Machine is a single-tape Turing machine.
	Machine = itm.Machine
	// Key indexes the transition function by (state, symbol).
	Key = itm.Key
	// Action is one transition: new state, written symbol, head move.
	Action = itm.Action
	// Move is a head movement.
	Move = itm.Move
	// Result is the outcome of a direct machine run.
	Result = itm.Result
)

// Blank is the blank tape symbol.
const Blank = itm.Blank

// EncodeWord encodes a word as the paper's word structure: an
// instance over successor, first/last markers and one unary relation
// per letter.
func EncodeWord(letters []string) (*ifact.Instance, error) { return itm.EncodeWord(letters) }

// DecodeWord inverts EncodeWord.
func DecodeWord(I *ifact.Instance, alphabet []string) ([]string, error) {
	return itm.DecodeWord(I, alphabet)
}

// All returns the machine library: every machine used by the §8
// experiments.
func All() []*Machine { return itm.All() }

// EvenLength accepts words of even length.
func EvenLength() *Machine { return itm.EvenLength() }

// EndsWithB accepts words ending in b.
func EndsWithB() *Machine { return itm.EndsWithB() }

// ABStar accepts (ab)*.
func ABStar() *Machine { return itm.ABStar() }

// CopyExtend walks past the end of its input, forcing the Dedalus
// simulation to mint tape cells named by timestamps.
func CopyExtend() *Machine { return itm.CopyExtend() }
