// Package while exposes the while query substrate: first-order logic
// extended with relation assignment and while-loops (§2 of the
// paper). While-programs express exactly the queries computable by an
// FO-transducer on a single-node network (Lemma 5(3)); compile one to
// a transducer with declnet/build.WhileTransducer.
//
// Text syntax:
//
//	T(x, y) := E(x, y);
//	while exists x, y D(x, y) {
//	    N(x, y) := T(x, y) | exists z (T(x, z) & T(z, y));
//	}
//	output T/2
package while

import (
	iwhile "declnet/internal/while"
)

type (
	// Program is a while-program with a designated output relation.
	Program = iwhile.Program
	// Stmt is a while-program statement.
	Stmt = iwhile.Stmt
	// Assign is the statement Rel := Q.
	Assign = iwhile.Assign
	// While is the statement "while Cond do Body".
	While = iwhile.While
	// Query adapts a program to declnet.Query; it errors on inputs
	// where the program diverges (while-queries are partial).
	Query = iwhile.Query
)

// ErrNonTerminating is reported when a program repeats a store state:
// it diverges on the given input.
var ErrNonTerminating = iwhile.ErrNonTerminating

// Parse parses the textual while syntax.
func Parse(src string) (*Program, error) { return iwhile.Parse(src) }

// MustParse is Parse panicking on error.
func MustParse(src string) *Program { return iwhile.MustParse(src) }

// New builds a program from statements; every loop condition must be
// a sentence.
func New(out string, outArity int, stmts ...Stmt) (*Program, error) {
	return iwhile.New(out, outArity, stmts...)
}

// MustNew is New panicking on error.
func MustNew(out string, outArity int, stmts ...Stmt) *Program {
	return iwhile.MustNew(out, outArity, stmts...)
}
